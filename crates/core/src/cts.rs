//! CTS — Combinatorial Thompson Sampling over the feasible strategy family.
//!
//! The Bayesian counterpart of the DFL index policies, after Hüyük & Tekin
//! (*Thompson Sampling for Combinatorial Network Optimization in Unknown
//! Environments*): each arm carries a Beta posterior over its Bernoulli mean;
//! every round the policy draws one sample `θ_i` per arm and hands the sample
//! vector to the combinatorial oracle, playing the feasible strategy that
//! maximises `Σ_{i ∈ s} θ_i`. Rewards in `[0, 1]` are folded into the
//! posterior by Bernoulli binarisation (success with probability equal to the
//! reward — Agrawal & Goyal's trick, as in
//! `netband_baselines::ThompsonBernoulli`), and *every* revealed observation
//! updates its arm, so side observations sharpen the posterior for free.
//!
//! Unlike the index policies, CTS composes naturally with the nonstationary
//! estimators: the posterior pseudo-counts are derived from an
//! [`ArmEstimators`] of any [`EstimatorKind`], so a discounted or
//! sliding-window CTS forgets stale evidence and re-explores after a change
//! point — the drifting-world policies of the `regret-vs-drift` experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netband_env::feasible::FeasibleSet;
use netband_env::{CombinatorialFeedback, StrategyFamily};
use netband_graph::{RelationGraph, StrategyBank};

use crate::estimator::{ArmEstimators, EstimatorKind};
use crate::policy::CombinatorialPolicy;
use crate::state::{PolicyState, PolicyStateError, PolicyStateReader};
use crate::ArmId;

/// Combinatorial Thompson sampling with a `Beta(1, 1)` prior per arm.
///
/// # Example
///
/// ```
/// use netband_core::cts::CombinatorialThompson;
/// use netband_core::policy::CombinatorialPolicy;
/// use netband_env::StrategyFamily;
/// use netband_graph::generators;
///
/// let graph = generators::path(4);
/// let family = StrategyFamily::independent_sets(2);
/// let mut policy = CombinatorialThompson::new(graph, family, 7);
/// let strategy = policy.select_strategy(1);
/// assert!(!strategy.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CombinatorialThompson {
    graph: RelationGraph,
    family: StrategyFamily,
    /// Flattened enumeration of the feasible set when it is small enough to
    /// enumerate; the per-round oracle is then a contiguous bank scan with
    /// the same last-max tie-breaking as the family's `argmax_row_by` path.
    enumerated: Option<StrategyBank>,
    /// Binarised observation evidence per arm; the Beta posterior of arm `i`
    /// is `Beta(1 + s_i, 1 + f_i)` with `s_i = mean_i · n_i`,
    /// `f_i = n_i − s_i` read off the estimator's mean and effective count.
    estimates: ArmEstimators,
    rng: StdRng,
    seed: u64,
    /// Per-round posterior sample vector `θ`, reused across rounds.
    theta: Vec<f64>,
    /// Per-round flat effective-count table (one estimator-kind dispatch per
    /// decide instead of one per arm), reused across rounds.
    eff_scratch: Vec<f64>,
}

impl CombinatorialThompson {
    /// Creates the stationary policy for the given relation graph and
    /// feasible family.
    pub fn new(graph: RelationGraph, family: StrategyFamily, seed: u64) -> Self {
        CombinatorialThompson::with_estimator(graph, family, EstimatorKind::Stationary, seed)
    }

    /// Creates the policy with an explicit [`EstimatorKind`] for the
    /// posterior evidence — [`EstimatorKind::Discounted`] or
    /// [`EstimatorKind::SlidingWindow`] give the nonstationary variants.
    ///
    /// # Panics
    ///
    /// Panics if the kind's parameters are out of range (see
    /// [`ArmEstimators::with_kind`]).
    pub fn with_estimator(
        graph: RelationGraph,
        family: StrategyFamily,
        kind: EstimatorKind,
        seed: u64,
    ) -> Self {
        let k = graph.num_vertices();
        let enumerated = family.enumerate(&graph);
        CombinatorialThompson {
            graph,
            family,
            enumerated,
            estimates: ArmEstimators::with_kind(k, kind),
            rng: StdRng::seed_from_u64(seed),
            seed,
            theta: vec![0.0; k],
            eff_scratch: Vec::with_capacity(k),
        }
    }

    /// Number of arms `K`.
    pub fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    /// The estimator kind backing the posterior pseudo-counts.
    pub fn estimator_kind(&self) -> EstimatorKind {
        self.estimates.kind()
    }

    /// Posterior mean of an arm under its `Beta(1 + s, 1 + f)` posterior.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn posterior_mean(&self, arm: ArmId) -> f64 {
        let (s, f) = self.pseudo_counts(arm);
        s / (s + f)
    }

    /// The Beta parameters `(1 + successes, 1 + failures)` of an arm.
    fn pseudo_counts(&self, arm: ArmId) -> (f64, f64) {
        let n = self.estimates.effective_count(arm);
        let s = (self.estimates.mean(arm) * n).clamp(0.0, n.max(0.0));
        (1.0 + s, 1.0 + (n - s))
    }

    /// Draws one posterior sample per arm into the scratch vector. The
    /// effective counts are materialised as one flat table first
    /// ([`ArmEstimators::effective_counts_into`]); the per-arm pseudo-count
    /// arithmetic and the RNG draw order are unchanged, so the sampled `θ`
    /// stream is bit-identical to the per-arm dispatching loop it replaces.
    fn sample_theta(&mut self) {
        self.estimates.effective_counts_into(&mut self.eff_scratch);
        let means = self.estimates.means();
        for (arm, &mean) in means.iter().enumerate() {
            let n = self.eff_scratch[arm];
            let s = (mean * n).clamp(0.0, n.max(0.0));
            let (a, b) = (1.0 + s, 1.0 + (n - s));
            self.theta[arm] = sample_beta(a, b, &mut self.rng);
        }
    }
}

impl CombinatorialPolicy for CombinatorialThompson {
    fn name(&self) -> &'static str {
        match self.estimates.kind() {
            EstimatorKind::Stationary => "CTS",
            EstimatorKind::Discounted { .. } => "CTS-D",
            EstimatorKind::SlidingWindow { .. } => "CTS-SW",
        }
    }

    fn select_strategy(&mut self, t: usize) -> Vec<ArmId> {
        let mut out = Vec::new();
        self.select_strategy_into(t, &mut out);
        out
    }

    fn select_strategy_into(&mut self, _t: usize, out: &mut Vec<ArmId>) {
        self.sample_theta();
        if let Some(bank) = &self.enumerated {
            // θ is the per-decide score table; one contiguous bank scan with
            // the same row-order summation and last-max tie-breaking.
            let x = bank
                .argmax_row_sums(&self.theta)
                .expect("CTS requires a non-empty feasible strategy set");
            out.clear();
            out.extend_from_slice(bank.row(x));
        } else {
            *out = self
                .family
                .argmax_by_arm_weights(&self.theta, &self.graph)
                .expect("CTS requires a non-empty feasible strategy set");
        }
    }

    fn update(&mut self, _t: usize, feedback: &CombinatorialFeedback) {
        // One round has passed: let discounted estimators decay first, so the
        // fresh evidence below enters at full weight.
        self.estimates.advance_round();
        for &(arm, reward) in &feedback.observations {
            if arm >= self.estimates.len() {
                continue;
            }
            // Binarise a [0,1] reward: success with probability equal to the
            // reward. For Bernoulli rewards (exactly 0.0 or 1.0) the draw is
            // deterministic, since `gen::<f64>()` lies in `[0, 1)`.
            let success = if self.rng.gen::<f64>() < reward {
                1.0
            } else {
                0.0
            };
            self.estimates.update(arm, success);
        }
    }

    fn reset(&mut self) {
        self.estimates.reset();
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        Some(&self.estimates)
    }

    // Durable state: posterior evidence plus the policy's RNG (sampling and
    // binarisation draw from the same stream, so the generator position is
    // part of the learned trajectory).
    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        self.estimates.save_state(&mut state);
        state.rng = Some(self.rng.to_state());
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        self.estimates.load_state(&mut reader)?;
        let rng = reader.rng()?;
        reader.finish()?;
        self.rng = StdRng::from_state(rng);
        Ok(())
    }
}

/// Beta(a, b) sampling through the two-gamma construction, with the
/// Marsaglia–Tsang Gamma sampler (the same construction as
/// `netband_baselines::ThompsonBernoulli` and
/// `netband_env::distributions::Distribution::Beta`).
fn sample_beta(a: f64, b: f64, rng: &mut StdRng) -> f64 {
    let x = marsaglia_tsang_gamma(a, rng);
    let y = marsaglia_tsang_gamma(b, rng);
    if x + y <= 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// Gamma(shape, 1) sampling (Marsaglia–Tsang, with the boost for shape < 1).
fn marsaglia_tsang_gamma(shape: f64, rng: &mut StdRng) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return marsaglia_tsang_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// One standard-normal draw (Box–Muller).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;

    fn fig2_policy_and_bandit(
        means: &[f64],
        kind: EstimatorKind,
        seed: u64,
    ) -> (CombinatorialThompson, NetworkedBandit) {
        let graph = generators::path(4);
        let family = StrategyFamily::independent_sets(2);
        let policy = CombinatorialThompson::with_estimator(graph.clone(), family, kind, seed);
        let bandit = NetworkedBandit::new(graph, ArmSet::bernoulli(means)).unwrap();
        (policy, bandit)
    }

    fn run(
        policy: &mut CombinatorialThompson,
        bandit: &NetworkedBandit,
        n: usize,
        seed: u64,
    ) -> Vec<Vec<ArmId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pulls = Vec::with_capacity(n);
        for t in 1..=n {
            let s = policy.select_strategy(t);
            let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
            policy.update(t, &fb);
            pulls.push(s);
        }
        pulls
    }

    #[test]
    fn names_report_the_estimator_variant() {
        let (p, _) = fig2_policy_and_bandit(&[0.5; 4], EstimatorKind::Stationary, 1);
        assert_eq!(p.name(), "CTS");
        let (p, _) =
            fig2_policy_and_bandit(&[0.5; 4], EstimatorKind::Discounted { gamma: 0.99 }, 1);
        assert_eq!(p.name(), "CTS-D");
        let (p, _) =
            fig2_policy_and_bandit(&[0.5; 4], EstimatorKind::SlidingWindow { window: 50 }, 1);
        assert_eq!(p.name(), "CTS-SW");
    }

    #[test]
    fn posterior_starts_at_the_uniform_prior() {
        let (policy, _) = fig2_policy_and_bandit(&[0.5; 4], EstimatorKind::Stationary, 3);
        for arm in 0..policy.num_arms() {
            assert!((policy.posterior_mean(arm) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn selections_are_feasible() {
        let (mut policy, bandit) =
            fig2_policy_and_bandit(&[0.2, 0.9, 0.3, 0.6], EstimatorKind::Stationary, 5);
        let graph = bandit.graph().clone();
        let family = StrategyFamily::independent_sets(2);
        for s in run(&mut policy, &bandit, 50, 9) {
            assert!(family.contains(&s, &graph), "{s:?}");
        }
    }

    #[test]
    fn converges_to_the_best_strategy() {
        // Unique best independent set of size ≤ 2 on the path is {1,3}.
        let (mut policy, bandit) =
            fig2_policy_and_bandit(&[0.2, 0.9, 0.3, 0.6], EstimatorKind::Stationary, 11);
        let pulls = run(&mut policy, &bandit, 4000, 13);
        let best_count = pulls[3000..]
            .iter()
            .filter(|s| s.as_slice() == [1, 3])
            .count();
        assert!(
            best_count > 850,
            "best strategy pulled only {best_count}/1000 times in the tail"
        );
    }

    #[test]
    fn side_observations_sharpen_the_posterior() {
        let (mut policy, bandit) = fig2_policy_and_bandit(&[1.0; 4], EstimatorKind::Stationary, 17);
        let mut rng = StdRng::seed_from_u64(19);
        // Pulling {1} observes Y_{1} = {0,1,2}; arm 3 stays at the prior.
        let fb = bandit.pull_strategy(&[1], &mut rng).unwrap();
        policy.update(1, &fb);
        for arm in [0, 1, 2] {
            assert!(policy.posterior_mean(arm) > 0.5, "arm {arm}");
        }
        assert!((policy.posterior_mean(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_replays_the_same_decisions() {
        let (mut policy, bandit) = fig2_policy_and_bandit(
            &[0.2, 0.9, 0.3, 0.6],
            EstimatorKind::Discounted { gamma: 0.95 },
            23,
        );
        let first = run(&mut policy, &bandit, 30, 29);
        policy.reset();
        let second = run(&mut policy, &bandit, 30, 29);
        assert_eq!(first, second);
    }

    #[test]
    fn discounted_cts_recovers_after_a_change_point_faster_than_stationary() {
        // Phase 1: arm 0 is best; phase 2: means flip and arm 3 is best. On a
        // complete graph every pull observes every arm, so by the change point
        // the stationary posterior carries 2000 observations of the *new*
        // best arm at its *old* mean — stale evidence that pins it for
        // hundreds of rounds, while the discounted posterior forgets it
        // within an effective window of 1/(1-γ) = 50 observations.
        let graph = generators::complete(4);
        let family = StrategyFamily::at_most_m(4, 1);
        let before =
            NetworkedBandit::new(graph.clone(), ArmSet::bernoulli(&[0.9, 0.3, 0.3, 0.1])).unwrap();
        let after =
            NetworkedBandit::new(graph.clone(), ArmSet::bernoulli(&[0.1, 0.3, 0.3, 0.9])).unwrap();
        let mut tails = Vec::new();
        for kind in [
            EstimatorKind::Stationary,
            EstimatorKind::Discounted { gamma: 0.98 },
        ] {
            let mut policy =
                CombinatorialThompson::with_estimator(graph.clone(), family.clone(), kind, 31);
            let mut rng = StdRng::seed_from_u64(37);
            let mut post_change_best = 0usize;
            for t in 1..=2500 {
                let bandit = if t <= 2000 { &before } else { &after };
                let s = policy.select_strategy(t);
                let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
                if t > 2100 && s == [3] {
                    post_change_best += 1;
                }
                policy.update(t, &fb);
            }
            tails.push(post_change_best);
        }
        assert!(
            tails[1] > tails[0] + 100,
            "discounted tail {} vs stationary tail {}",
            tails[1],
            tails[0]
        );
    }
}
