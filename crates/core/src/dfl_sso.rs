//! DFL-SSO — Distribution-Free Learning for Single-play with Side Observation
//! (Algorithm 1 of the paper).
//!
//! At every time slot the policy pulls the arm maximising the MOSS-style index
//!
//! ```text
//! X̄_i  +  sqrt( log⁺( t / (K · O_i) ) / O_i )
//! ```
//!
//! where `O_i` is the number of times arm `i` has been *observed* (not pulled:
//! side observation means every neighbour of the pulled arm is also observed),
//! and `X̄_i` is the running average of those observations. The side
//! observations let the policy explore "without pain": the observation counters
//! of whole neighbourhoods advance on every pull, which is what drives the
//! improved `15.94·sqrt(nK) + 0.74·C·sqrt(n/K)` bound of Theorem 1.

use netband_env::SinglePlayFeedback;
use netband_graph::RelationGraph;

use crate::estimator::{moss_index, ArmEstimators};
use crate::kernels;
use crate::policy::SinglePlayPolicy;
use crate::state::{PolicyState, PolicyStateError, PolicyStateReader};
use crate::ArmId;

/// The DFL-SSO policy (Algorithm 1).
///
/// # Example
///
/// ```
/// use netband_core::dfl_sso::DflSso;
/// use netband_core::policy::SinglePlayPolicy;
/// use netband_env::{ArmSet, NetworkedBandit};
/// use netband_graph::generators;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let graph = generators::erdos_renyi(8, 0.4, &mut rng);
/// let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(8)).unwrap();
/// let mut policy = DflSso::new(graph);
///
/// for t in 1..=100 {
///     let arm = policy.select_arm(t);
///     let feedback = bandit.pull_single(arm, &mut rng);
///     policy.update(t, &feedback);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct DflSso {
    graph: RelationGraph,
    /// Flat per-arm observation counts and running means (`O_i`, `X̄_i`),
    /// keyed by dense arm id.
    estimates: ArmEstimators,
}

impl DflSso {
    /// Creates the policy for the given relation graph.
    ///
    /// The policy only uses the graph for its vertex count and to interpret
    /// feedback (the environment already restricts observations to the pulled
    /// arm's closed neighbourhood), so the graph is stored mostly for
    /// introspection and debugging.
    pub fn new(graph: RelationGraph) -> Self {
        let k = graph.num_vertices();
        DflSso {
            graph,
            estimates: ArmEstimators::new(k),
        }
    }

    /// Number of arms `K`.
    pub fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    /// The relation graph this policy was built for.
    pub fn graph(&self) -> &RelationGraph {
        &self.graph
    }

    /// Observation count `O_i` of an arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn observation_count(&self, arm: ArmId) -> u64 {
        self.estimates.count(arm)
    }

    /// Current empirical mean `X̄_i` of an arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn empirical_mean(&self, arm: ArmId) -> f64 {
        self.estimates.mean(arm)
    }

    /// The index value (Equation 5) of an arm at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn index(&self, arm: ArmId, t: usize) -> f64 {
        moss_index(
            self.estimates.mean(arm),
            self.estimates.count(arm),
            t,
            self.num_arms(),
        )
    }
}

impl SinglePlayPolicy for DflSso {
    fn name(&self) -> &'static str {
        "DFL-SSO"
    }

    fn select_arm(&mut self, t: usize) -> ArmId {
        debug_assert!(self.num_arms() > 0, "cannot select from zero arms");
        // Fused score+argmax sweep over the flat estimate arrays; the kernel
        // reproduces `moss_index` + `argmax_last` bit for bit.
        kernels::moss_argmax(
            self.estimates.means(),
            self.estimates.counts(),
            t,
            self.num_arms(),
        )
        .unwrap_or(0)
    }

    fn update(&mut self, _t: usize, feedback: &SinglePlayFeedback) {
        for &(arm, reward) in &feedback.observations {
            if arm < self.estimates.len() {
                self.estimates.update(arm, reward);
            }
        }
    }

    fn reset(&mut self) {
        self.estimates.reset();
    }

    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        Some(&self.estimates)
    }

    // Durable state is the estimator arrays alone; the graph is structure and
    // is rebuilt from the scenario document on restore.
    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        self.estimates.save_state(&mut state);
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        self.estimates.load_state(&mut reader)?;
        reader.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(policy: &mut DflSso, bandit: &NetworkedBandit, n: usize, seed: u64) -> Vec<ArmId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pulls = Vec::with_capacity(n);
        for t in 1..=n {
            let arm = policy.select_arm(t);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
            pulls.push(arm);
        }
        pulls
    }

    #[test]
    fn explores_every_arm_before_exploiting_on_edgeless_graph() {
        // Without side observation, the first K selections must all be distinct
        // (unobserved arms have infinite index).
        let graph = generators::edgeless(6);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(6)).unwrap();
        let mut policy = DflSso::new(graph);
        let pulls = run(&mut policy, &bandit, 6, 3);
        let mut sorted = pulls.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            6,
            "first K pulls must cover all arms: {pulls:?}"
        );
    }

    #[test]
    fn side_observation_updates_neighbours() {
        let graph = generators::star(5);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(5)).unwrap();
        let mut policy = DflSso::new(graph);
        let mut rng = StdRng::seed_from_u64(1);
        // Pulling the hub observes every arm.
        let fb = bandit.pull_single(0, &mut rng);
        policy.update(1, &fb);
        for arm in 0..5 {
            assert_eq!(policy.observation_count(arm), 1, "arm {arm}");
        }
    }

    #[test]
    fn converges_to_the_best_arm() {
        let mut rng = StdRng::seed_from_u64(11);
        let graph = generators::erdos_renyi(10, 0.4, &mut rng);
        let arms = ArmSet::bernoulli(&[0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.9]);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = DflSso::new(graph);
        let pulls = run(&mut policy, &bandit, 3000, 7);
        let best_pulls = pulls[2000..].iter().filter(|&&a| a == 9).count();
        assert!(
            best_pulls as f64 > 0.9 * 1000.0,
            "best arm pulled only {best_pulls}/1000 times in the tail"
        );
    }

    #[test]
    fn dense_graph_converges_faster_than_sparse() {
        // With a complete relation graph every pull observes every arm, so the
        // policy should lock onto the best arm almost immediately.
        let arms = ArmSet::bernoulli(&[0.2, 0.3, 0.4, 0.5, 0.6, 0.95]);
        let dense = NetworkedBandit::new(generators::complete(6), arms.clone()).unwrap();
        let mut policy = DflSso::new(generators::complete(6));
        let pulls = run(&mut policy, &dense, 500, 5);
        let best = pulls[100..].iter().filter(|&&a| a == 5).count();
        assert!(best as f64 > 0.95 * 400.0, "only {best}/400 best pulls");
    }

    #[test]
    fn reset_restores_initial_state() {
        let graph = generators::complete(4);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(4)).unwrap();
        let mut policy = DflSso::new(graph);
        run(&mut policy, &bandit, 50, 2);
        assert!(policy.observation_count(0) > 0);
        policy.reset();
        for arm in 0..4 {
            assert_eq!(policy.observation_count(arm), 0);
            assert_eq!(policy.empirical_mean(arm), 0.0);
        }
        assert_eq!(policy.index(0, 1), f64::INFINITY);
    }

    #[test]
    fn update_ignores_out_of_range_observations() {
        let graph = generators::edgeless(3);
        let mut policy = DflSso::new(graph);
        let fb = SinglePlayFeedback {
            arm: 0,
            direct_reward: 1.0,
            side_reward: 1.0,
            observations: vec![(0, 1.0), (9, 0.5)],
        };
        policy.update(1, &fb);
        assert_eq!(policy.observation_count(0), 1);
    }

    #[test]
    fn name_and_accessors() {
        let graph = generators::path(3);
        let policy = DflSso::new(graph.clone());
        assert_eq!(policy.name(), "DFL-SSO");
        assert_eq!(policy.num_arms(), 3);
        assert_eq!(policy.graph(), &graph);
    }
}
