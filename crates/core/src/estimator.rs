//! Running-mean estimators and the MOSS-style confidence index.
//!
//! Every algorithm in the paper maintains, for each arm (or com-arm), the number
//! of times its reward has been observed and the running average of those
//! observations, and ranks candidates by a MOSS-style upper-confidence index
//! `mean + sqrt(log⁺(t / (K · count)) / count)`.
//!
//! The paper's world is stationary; for drifting worlds the estimators also
//! come in *discounted* and *sliding-window* flavours behind the
//! [`EstimatorKind`] knob, which forget old observations so the mean tracks a
//! moving target. `EstimatorKind::Stationary` is always the bit-exact paper
//! path.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::state::{PolicyState, PolicyStateError, PolicyStateReader};

/// `log⁺(x) = max(ln x, 0)`, the truncated logarithm used by MOSS-style indices.
///
/// Defined as 0 for non-positive inputs.
pub fn log_plus(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.ln()
    }
}

/// An incrementally updated sample mean.
///
/// # Example
///
/// ```
/// use netband_core::estimator::RunningMean;
///
/// let mut m = RunningMean::new();
/// m.update(1.0);
/// m.update(0.0);
/// assert_eq!(m.count(), 2);
/// assert_eq!(m.mean(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningMean {
    count: u64,
    mean: f64,
}

impl RunningMean {
    /// A fresh estimator with no observations.
    pub fn new() -> Self {
        RunningMean {
            count: 0,
            mean: 0.0,
        }
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current sample mean (0 before the first observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Returns `true` if no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds one observation into the mean.
    pub fn update(&mut self, value: f64) {
        self.count += 1;
        self.mean += (value - self.mean) / self.count as f64;
    }

    /// Resets the estimator to its initial state.
    pub fn reset(&mut self) {
        self.count = 0;
        self.mean = 0.0;
    }

    /// Rebuilds an estimator from a `(count, mean)` pair captured by
    /// [`RunningMean::count`] / [`RunningMean::mean`] — the durable-state
    /// restore path.
    pub fn from_parts(count: u64, mean: f64) -> Self {
        RunningMean { count, mean }
    }
}

/// Appends a `Vec<RunningMean>`'s state (one count array, one mean array) to
/// a [`PolicyState`]; the counterpart of [`load_running_means`].
pub fn save_running_means(estimates: &[RunningMean], out: &mut PolicyState) {
    out.counts
        .push(estimates.iter().map(|m| m.count()).collect());
    out.floats
        .push(estimates.iter().map(|m| m.mean()).collect());
}

/// Restores a `Vec<RunningMean>` saved by [`save_running_means`], checking
/// that the array lengths match `estimates.len()`.
pub fn load_running_means(
    estimates: &mut [RunningMean],
    reader: &mut PolicyStateReader<'_>,
) -> Result<(), PolicyStateError> {
    let counts = reader.counts(estimates.len())?;
    let means = reader.floats(estimates.len())?;
    for (slot, (&count, &mean)) in estimates.iter_mut().zip(counts.iter().zip(means)) {
        *slot = RunningMean::from_parts(count, mean);
    }
    Ok(())
}

/// How a set of [`ArmEstimators`] aggregates observations into means.
///
/// The paper's algorithms assume fixed arm means, so the default
/// [`Stationary`](EstimatorKind::Stationary) kind is the plain sample mean.
/// The other two kinds forget old observations so the estimate tracks a
/// drifting mean — the standard D-UCB / SW-UCB estimator constructions.
///
/// # Example
///
/// ```
/// use netband_core::estimator::{ArmEstimators, EstimatorKind};
///
/// let mut est = ArmEstimators::with_kind(2, EstimatorKind::Discounted { gamma: 0.9 });
/// est.update(0, 1.0);
/// est.advance_round(); // between rounds, old evidence decays
/// est.update(0, 0.0);
/// // The newer observation weighs more than 1/2.
/// assert!(est.mean(0) < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// The plain sample mean over all observations (the paper's setting).
    #[default]
    Stationary,
    /// Exponentially discounted mean: each call to
    /// [`ArmEstimators::advance_round`] multiplies every arm's effective
    /// sample size by `gamma ∈ (0, 1]`, so an observation from `d` rounds ago
    /// carries weight `gamma^d`. With `gamma = 1.0` this is bit-identical to
    /// [`Stationary`](EstimatorKind::Stationary).
    Discounted {
        /// Per-round retention factor in `(0, 1]`.
        gamma: f64,
    },
    /// Mean over the last `window` observations of each arm (per-arm ring
    /// buffer); older observations are dropped entirely.
    SlidingWindow {
        /// Number of most recent observations retained per arm (≥ 1).
        window: usize,
    },
}

impl EstimatorKind {
    /// `true` for the plain stationary sample mean.
    pub fn is_stationary(&self) -> bool {
        matches!(self, EstimatorKind::Stationary)
    }
}

/// Dense struct-of-arrays running-mean estimators for `K` arms (or com-arms).
///
/// Semantically a `Vec<RunningMean>` — each slot folds observations with the
/// exact same incremental-mean recurrence as [`RunningMean::update`], so a
/// policy converted from per-arm structs to these arrays produces bit-identical
/// estimates — but stored as two flat arrays (`counts`, `means`) keyed by dense
/// arm id. The per-round argmax scans of the policies then read one contiguous
/// `f64` array instead of striding over an array of structs.
///
/// # Example
///
/// ```
/// use netband_core::estimator::ArmEstimators;
///
/// let mut est = ArmEstimators::new(3);
/// est.update(1, 1.0);
/// est.update(1, 0.0);
/// assert_eq!(est.count(1), 2);
/// assert_eq!(est.mean(1), 0.5);
/// assert_eq!(est.count(0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArmEstimators {
    counts: Vec<u64>,
    means: Vec<f64>,
    kind: EstimatorKind,
    /// Discounted effective sample sizes (empty unless `kind` is
    /// `Discounted`). Decaying a weight leaves the mean untouched because the
    /// discounted mean is the ratio of the discounted sum to the discounted
    /// weight, and both decay by the same factor.
    weights: Vec<f64>,
    /// Per-arm rings of the retained observations (empty unless `kind` is
    /// `SlidingWindow`).
    windows: Vec<VecDeque<f64>>,
}

impl ArmEstimators {
    /// Fresh estimators for `len` arms, all with zero observations.
    pub fn new(len: usize) -> Self {
        ArmEstimators {
            counts: vec![0; len],
            means: vec![0.0; len],
            kind: EstimatorKind::Stationary,
            weights: Vec::new(),
            windows: Vec::new(),
        }
    }

    /// Fresh estimators of the given [`EstimatorKind`].
    ///
    /// `with_kind(len, EstimatorKind::Stationary)` is identical to
    /// [`ArmEstimators::new`].
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `(0, 1]` or `window` is `0`.
    pub fn with_kind(len: usize, kind: EstimatorKind) -> Self {
        let mut est = ArmEstimators::new(len);
        match kind {
            EstimatorKind::Stationary => {}
            EstimatorKind::Discounted { gamma } => {
                assert!(
                    gamma > 0.0 && gamma <= 1.0,
                    "discount gamma must be in (0, 1], got {gamma}"
                );
                est.weights = vec![0.0; len];
            }
            EstimatorKind::SlidingWindow { window } => {
                assert!(window >= 1, "sliding window must be >= 1");
                est.windows = vec![VecDeque::new(); len];
            }
        }
        est.kind = kind;
        est
    }

    /// The aggregation kind of these estimators.
    pub fn kind(&self) -> EstimatorKind {
        self.kind
    }

    /// Number of arms tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if no arms are tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Observation count of arm `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Current sample mean of arm `i` (0 before the first observation).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn mean(&self, i: usize) -> f64 {
        self.means[i]
    }

    /// The flat observation-count array.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The flat sample-mean array.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The evidence currently behind arm `i`'s mean: the raw count for
    /// stationary estimators, the decayed weight for discounted ones, and the
    /// ring occupancy for sliding windows. This is the `count` the confidence
    /// indices should see (see [`moss_index_weighted`] / [`csr_index_weighted`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn effective_count(&self, i: usize) -> f64 {
        match self.kind {
            EstimatorKind::Stationary => self.counts[i] as f64,
            EstimatorKind::Discounted { .. } => self.weights[i],
            EstimatorKind::SlidingWindow { .. } => self.windows[i].len() as f64,
        }
    }

    /// Writes [`effective_count`](ArmEstimators::effective_count) for every
    /// arm into `out` (cleared first) in one contiguous pass, so score
    /// kernels can sweep a flat `f64` table instead of re-dispatching on the
    /// estimator kind per arm.
    pub fn effective_counts_into(&self, out: &mut Vec<f64>) {
        out.clear();
        match self.kind {
            EstimatorKind::Stationary => out.extend(self.counts.iter().map(|&c| c as f64)),
            EstimatorKind::Discounted { .. } => out.extend_from_slice(&self.weights),
            EstimatorKind::SlidingWindow { .. } => {
                out.extend(self.windows.iter().map(|w| w.len() as f64))
            }
        }
    }

    /// Folds one observation of arm `i` into its mean.
    ///
    /// For [`EstimatorKind::Stationary`] this is the [`RunningMean`]
    /// recurrence, bit for bit. The discounted variant uses the same
    /// incremental form over the decayed weight (`w ← w + 1`,
    /// `m ← m + (x − m) / w`), which reduces to the stationary recurrence
    /// exactly when the discount never decays the weights (γ = 1). The
    /// sliding-window variant pushes into the ring and recomputes the mean
    /// over the retained values.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn update(&mut self, i: usize, value: f64) {
        self.counts[i] += 1;
        match self.kind {
            EstimatorKind::Stationary => {
                self.means[i] += (value - self.means[i]) / self.counts[i] as f64;
            }
            EstimatorKind::Discounted { .. } => {
                self.weights[i] += 1.0;
                self.means[i] += (value - self.means[i]) / self.weights[i];
            }
            EstimatorKind::SlidingWindow { window } => {
                let ring = &mut self.windows[i];
                if ring.len() == window {
                    ring.pop_front();
                }
                ring.push_back(value);
                self.means[i] = ring.iter().sum::<f64>() / ring.len() as f64;
            }
        }
    }

    /// Marks the passage of one round: discounted estimators multiply every
    /// arm's effective sample size by γ (one fused multiply over the flat
    /// weight array; the means are invariant under the joint decay of sum and
    /// weight). A no-op for the other kinds — and for γ = 1, where skipping
    /// the multiply keeps the weights exact integers and the whole estimator
    /// bit-identical to the stationary path.
    pub fn advance_round(&mut self) {
        if let EstimatorKind::Discounted { gamma } = self.kind {
            if gamma < 1.0 {
                for w in &mut self.weights {
                    *w *= gamma;
                }
            }
        }
    }

    /// Resets every arm to its initial state (the kind is retained).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.means.fill(0.0);
        self.weights.fill(0.0);
        for ring in &mut self.windows {
            ring.clear();
        }
    }

    /// Appends the estimators' learned state to a
    /// [`PolicyState`]: the count array, the mean
    /// array, the discounted weights (empty unless discounted), and — for
    /// sliding windows — one ring per arm, oldest observation first. The kind
    /// itself is structure (it comes from the scenario document), so it is
    /// **not** saved; [`ArmEstimators::load_state`] checks it matches.
    pub fn save_state(&self, out: &mut PolicyState) {
        out.counts.push(self.counts.clone());
        out.floats.push(self.means.clone());
        out.floats.push(self.weights.clone());
        for ring in &self.windows {
            out.windows.push(ring.iter().copied().collect());
        }
    }

    /// Restores state saved by [`ArmEstimators::save_state`] into estimators
    /// of the same shape (same arm count and [`EstimatorKind`]); the restored
    /// estimators continue bit-identically to the saved ones.
    pub fn load_state(
        &mut self,
        reader: &mut PolicyStateReader<'_>,
    ) -> Result<(), PolicyStateError> {
        let len = self.counts.len();
        let counts = reader.counts(len)?;
        let means = reader.floats(len)?;
        let weights = reader.floats(self.weights.len())?;
        self.counts.copy_from_slice(counts);
        self.means.copy_from_slice(means);
        self.weights.copy_from_slice(weights);
        if let EstimatorKind::SlidingWindow { window } = self.kind {
            for ring in &mut self.windows {
                let saved = reader.window()?;
                if saved.len() > window {
                    return Err(reader.mismatch(format!(
                        "window ring holds {} observations, capacity is {window}",
                        saved.len()
                    )));
                }
                ring.clear();
                ring.extend(saved.iter().copied());
            }
        }
        Ok(())
    }
}

/// Index of the maximum of `values`, breaking ties towards the **last**
/// maximum — the selection `Iterator::max_by` makes with a
/// `partial_cmp(..).unwrap_or(Equal)` comparator. The policies' single-pass
/// argmax scans use this so that converting them away from comparator-based
/// `max_by` keeps every selection (and hence every golden trace) bit-identical.
///
/// Incomparable values (NaN) are treated as equal, so a later NaN replaces the
/// incumbent, exactly like the `unwrap_or(Equal)` comparators did.
pub fn argmax_last(values: impl IntoIterator<Item = f64>) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, v) in values.into_iter().enumerate() {
        let keep_incumbent = best
            .map(|(_, b)| b.partial_cmp(&v) == Some(std::cmp::Ordering::Greater))
            .unwrap_or(false);
        if !keep_incumbent {
            best = Some((i, v));
        }
    }
    best.map(|(i, _)| i)
}

/// The MOSS-style index `mean + sqrt(log⁺(t / (k · count)) / count)`.
///
/// * `mean`, `count` — the running estimate of the candidate;
/// * `t` — the current time slot (1-based);
/// * `k` — the number of candidates competing for play (arms `K`, or com-arms
///   `|F|` in Algorithm 2).
///
/// Candidates with `count == 0` get `f64::INFINITY` so they are explored first,
/// which matches the usual initialisation of MOSS/UCB implementations.
pub fn moss_index(mean: f64, count: u64, t: usize, k: usize) -> f64 {
    if count == 0 {
        return f64::INFINITY;
    }
    let count_f = count as f64;
    let k_f = k.max(1) as f64;
    mean + (log_plus(t as f64 / (k_f * count_f)) / count_f).sqrt()
}

/// [`moss_index`] over a real-valued (discounted / windowed) sample size.
///
/// For an integer `count` this computes the exact same expression as
/// [`moss_index`]; fractional effective counts arise from
/// [`EstimatorKind::Discounted`] weights.
pub fn moss_index_weighted(mean: f64, count: f64, t: usize, k: usize) -> f64 {
    if count <= 0.0 {
        return f64::INFINITY;
    }
    let k_f = k.max(1) as f64;
    mean + (log_plus(t as f64 / (k_f * count)) / count).sqrt()
}

/// The DFL-CSR per-arm index of Equation (47):
/// `mean + sqrt(max(ln(t^{2/3} / (K · count)), 0) / count)`.
///
/// For unobserved arms (`count == 0`) the index is a finite value strictly
/// larger than any observed arm's index at the same `t`, so that the
/// combinatorial oracle (which sums indices) keeps producing finite totals while
/// still prioritising exploration of unobserved arms.
pub fn csr_index(mean: f64, count: u64, t: usize, k: usize) -> f64 {
    let t_pow = (t.max(1) as f64).powf(2.0 / 3.0);
    if count == 0 {
        // Upper bound of any observed index at time t, plus a margin.
        return 1.0 + (log_plus(t_pow) + 1.0).sqrt();
    }
    let count_f = count as f64;
    let k_f = k.max(1) as f64;
    mean + (log_plus(t_pow / (k_f * count_f)) / count_f).sqrt()
}

/// [`csr_index`] over a real-valued (discounted / windowed) sample size.
///
/// For an integer `count` this computes the exact same expression as
/// [`csr_index`]; fractional effective counts arise from
/// [`EstimatorKind::Discounted`] weights.
pub fn csr_index_weighted(mean: f64, count: f64, t: usize, k: usize) -> f64 {
    let t_pow = (t.max(1) as f64).powf(2.0 / 3.0);
    if count <= 0.0 {
        return 1.0 + (log_plus(t_pow) + 1.0).sqrt();
    }
    let k_f = k.max(1) as f64;
    mean + (log_plus(t_pow / (k_f * count)) / count).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_plus_truncates_at_zero() {
        assert_eq!(log_plus(0.5), 0.0);
        assert_eq!(log_plus(0.0), 0.0);
        assert_eq!(log_plus(-3.0), 0.0);
        assert_eq!(log_plus(1.0), 0.0);
        assert!((log_plus(std::f64::consts::E) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn running_mean_matches_batch_mean() {
        let data = [0.3, 0.9, 0.1, 0.5, 0.7, 0.2];
        let mut m = RunningMean::new();
        for &x in &data {
            m.update(x);
        }
        let batch = data.iter().sum::<f64>() / data.len() as f64;
        assert_eq!(m.count(), data.len() as u64);
        assert!((m.mean() - batch).abs() < 1e-12);
    }

    #[test]
    fn running_mean_reset() {
        let mut m = RunningMean::new();
        assert!(m.is_empty());
        m.update(1.0);
        assert!(!m.is_empty());
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.mean(), 0.0);
    }

    #[test]
    fn moss_index_prefers_unobserved() {
        assert_eq!(moss_index(0.5, 0, 10, 5), f64::INFINITY);
        assert!(moss_index(0.5, 1, 10, 5).is_finite());
    }

    #[test]
    fn moss_index_decreases_with_count() {
        let t = 10_000;
        let k = 10;
        let few = moss_index(0.5, 5, t, k);
        let many = moss_index(0.5, 500, t, k);
        assert!(few > many);
        // With enough observations the bonus vanishes (log⁺ truncation).
        let saturated = moss_index(0.5, 10_000, t, k);
        assert_eq!(saturated, 0.5);
    }

    #[test]
    fn moss_index_increases_with_time() {
        let early = moss_index(0.5, 10, 100, 10);
        let late = moss_index(0.5, 10, 100_000, 10);
        assert!(late > early);
    }

    #[test]
    fn moss_index_handles_degenerate_k() {
        // k = 0 must not divide by zero.
        let idx = moss_index(0.5, 10, 100, 0);
        assert!(idx.is_finite());
    }

    #[test]
    fn csr_index_unobserved_dominates_observed() {
        for &t in &[1usize, 10, 1_000, 100_000] {
            let unobserved = csr_index(0.0, 0, t, 10);
            // The largest possible observed index has mean 1 and count 1.
            let best_observed = csr_index(1.0, 1, t, 10);
            assert!(
                unobserved > best_observed,
                "t={t}: unobserved {unobserved} <= observed {best_observed}"
            );
            assert!(unobserved.is_finite());
        }
    }

    #[test]
    fn csr_index_decays_with_count() {
        let t = 10_000;
        assert!(csr_index(0.5, 2, t, 10) > csr_index(0.5, 200, t, 10));
    }

    #[test]
    fn arm_estimators_match_running_means_bit_for_bit() {
        let mut soa = ArmEstimators::new(3);
        let mut aos = [RunningMean::new(); 3];
        let stream = [(0, 0.3), (1, 0.9), (0, 0.1), (2, 0.55), (0, 0.7), (1, 0.2)];
        for &(i, x) in &stream {
            soa.update(i, x);
            aos[i].update(x);
        }
        for (i, arm) in aos.iter().enumerate() {
            assert_eq!(soa.count(i), arm.count());
            assert_eq!(soa.mean(i).to_bits(), arm.mean().to_bits(), "arm {i}");
        }
        assert_eq!(soa.means().len(), 3);
        assert_eq!(soa.counts().len(), 3);
        soa.reset();
        assert_eq!(soa, ArmEstimators::new(3));
    }

    #[test]
    fn with_kind_stationary_is_new() {
        assert_eq!(
            ArmEstimators::with_kind(4, EstimatorKind::Stationary),
            ArmEstimators::new(4)
        );
        assert!(ArmEstimators::new(4).kind().is_stationary());
    }

    #[test]
    fn discounted_with_unit_gamma_matches_stationary_bit_for_bit() {
        let mut stationary = ArmEstimators::new(3);
        let mut discounted = ArmEstimators::with_kind(3, EstimatorKind::Discounted { gamma: 1.0 });
        let stream = [(0, 0.3), (1, 0.9), (0, 0.1), (2, 0.55), (0, 0.7), (1, 0.2)];
        for &(i, x) in &stream {
            stationary.update(i, x);
            discounted.update(i, x);
            discounted.advance_round();
        }
        for i in 0..3 {
            assert_eq!(stationary.count(i), discounted.count(i));
            assert_eq!(
                stationary.mean(i).to_bits(),
                discounted.mean(i).to_bits(),
                "arm {i}"
            );
            assert_eq!(stationary.effective_count(i), discounted.effective_count(i));
        }
    }

    #[test]
    fn discounted_mean_tracks_a_level_shift_faster_than_stationary() {
        let mut stationary = ArmEstimators::new(1);
        let mut discounted = ArmEstimators::with_kind(1, EstimatorKind::Discounted { gamma: 0.9 });
        for _ in 0..200 {
            stationary.update(0, 0.0);
            discounted.update(0, 0.0);
            discounted.advance_round();
        }
        for _ in 0..20 {
            stationary.update(0, 1.0);
            discounted.update(0, 1.0);
            discounted.advance_round();
        }
        assert!(
            discounted.mean(0) > 0.8,
            "discounted mean {} should have converged to the new level",
            discounted.mean(0)
        );
        assert!(
            stationary.mean(0) < 0.2,
            "stationary {}",
            stationary.mean(0)
        );
        // The decayed evidence is bounded by the geometric series 1/(1-γ).
        assert!(discounted.effective_count(0) <= 1.0 / (1.0 - 0.9) + 1e-9);
    }

    #[test]
    fn discounted_decay_leaves_means_invariant() {
        let mut est = ArmEstimators::with_kind(2, EstimatorKind::Discounted { gamma: 0.5 });
        est.update(0, 0.75);
        est.update(1, 0.25);
        let before = [est.mean(0), est.mean(1)];
        est.advance_round();
        assert_eq!(est.mean(0).to_bits(), before[0].to_bits());
        assert_eq!(est.mean(1).to_bits(), before[1].to_bits());
        assert_eq!(est.effective_count(0), 0.5);
    }

    #[test]
    fn sliding_window_forgets_evicted_observations() {
        let mut est = ArmEstimators::with_kind(1, EstimatorKind::SlidingWindow { window: 3 });
        for &x in &[0.0, 0.0, 0.0, 1.0, 1.0, 1.0] {
            est.update(0, x);
        }
        // Only the last three observations remain.
        assert_eq!(est.mean(0), 1.0);
        assert_eq!(est.effective_count(0), 3.0);
        // The raw count still records every observation.
        assert_eq!(est.count(0), 6);
    }

    #[test]
    fn sliding_window_matches_stationary_before_the_window_fills() {
        let mut stationary = ArmEstimators::new(1);
        let mut windowed = ArmEstimators::with_kind(1, EstimatorKind::SlidingWindow { window: 8 });
        for &x in &[0.3, 0.9, 0.1] {
            stationary.update(0, x);
            windowed.update(0, x);
        }
        assert!((stationary.mean(0) - windowed.mean(0)).abs() < 1e-12);
    }

    #[test]
    fn nonstationary_reset_clears_forgetting_state() {
        let mut est = ArmEstimators::with_kind(2, EstimatorKind::Discounted { gamma: 0.7 });
        est.update(0, 1.0);
        est.advance_round();
        est.reset();
        assert_eq!(est.effective_count(0), 0.0);
        assert_eq!(est.mean(0), 0.0);
        assert_eq!(est.kind(), EstimatorKind::Discounted { gamma: 0.7 });

        let mut est = ArmEstimators::with_kind(2, EstimatorKind::SlidingWindow { window: 4 });
        est.update(1, 1.0);
        est.reset();
        assert_eq!(est.effective_count(1), 0.0);
        assert_eq!(est.count(1), 0);
    }

    #[test]
    fn weighted_indices_match_integer_indices_on_integer_counts() {
        for &(mean, count, t, k) in &[(0.5, 3u64, 100usize, 10usize), (0.2, 17, 9999, 4)] {
            assert_eq!(
                moss_index(mean, count, t, k).to_bits(),
                moss_index_weighted(mean, count as f64, t, k).to_bits()
            );
            assert_eq!(
                csr_index(mean, count, t, k).to_bits(),
                csr_index_weighted(mean, count as f64, t, k).to_bits()
            );
        }
        assert_eq!(moss_index_weighted(0.5, 0.0, 10, 5), f64::INFINITY);
        assert_eq!(
            csr_index_weighted(0.5, 0.0, 10, 5).to_bits(),
            csr_index(0.5, 0, 10, 5).to_bits()
        );
    }

    #[test]
    fn argmax_last_matches_max_by() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![1.0],
            vec![0.1, 0.5, 0.5, 0.2],
            vec![f64::INFINITY, f64::INFINITY, f64::INFINITY],
            vec![0.3, f64::NAN, 0.2],
            vec![f64::NAN, 0.3, 0.2],
            vec![1.0, 2.0, 3.0],
            vec![3.0, 2.0, 1.0],
        ];
        for values in cases {
            let reference = (0..values.len()).max_by(|&a, &b| {
                values[a]
                    .partial_cmp(&values[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            assert_eq!(
                argmax_last(values.iter().copied()),
                reference,
                "values {values:?}"
            );
        }
    }
}
