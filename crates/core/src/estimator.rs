//! Running-mean estimators and the MOSS-style confidence index.
//!
//! Every algorithm in the paper maintains, for each arm (or com-arm), the number
//! of times its reward has been observed and the running average of those
//! observations, and ranks candidates by a MOSS-style upper-confidence index
//! `mean + sqrt(log⁺(t / (K · count)) / count)`.

use serde::{Deserialize, Serialize};

/// `log⁺(x) = max(ln x, 0)`, the truncated logarithm used by MOSS-style indices.
///
/// Defined as 0 for non-positive inputs.
pub fn log_plus(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.ln()
    }
}

/// An incrementally updated sample mean.
///
/// # Example
///
/// ```
/// use netband_core::estimator::RunningMean;
///
/// let mut m = RunningMean::new();
/// m.update(1.0);
/// m.update(0.0);
/// assert_eq!(m.count(), 2);
/// assert_eq!(m.mean(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningMean {
    count: u64,
    mean: f64,
}

impl RunningMean {
    /// A fresh estimator with no observations.
    pub fn new() -> Self {
        RunningMean {
            count: 0,
            mean: 0.0,
        }
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current sample mean (0 before the first observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Returns `true` if no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds one observation into the mean.
    pub fn update(&mut self, value: f64) {
        self.count += 1;
        self.mean += (value - self.mean) / self.count as f64;
    }

    /// Resets the estimator to its initial state.
    pub fn reset(&mut self) {
        self.count = 0;
        self.mean = 0.0;
    }
}

/// Dense struct-of-arrays running-mean estimators for `K` arms (or com-arms).
///
/// Semantically a `Vec<RunningMean>` — each slot folds observations with the
/// exact same incremental-mean recurrence as [`RunningMean::update`], so a
/// policy converted from per-arm structs to these arrays produces bit-identical
/// estimates — but stored as two flat arrays (`counts`, `means`) keyed by dense
/// arm id. The per-round argmax scans of the policies then read one contiguous
/// `f64` array instead of striding over an array of structs.
///
/// # Example
///
/// ```
/// use netband_core::estimator::ArmEstimators;
///
/// let mut est = ArmEstimators::new(3);
/// est.update(1, 1.0);
/// est.update(1, 0.0);
/// assert_eq!(est.count(1), 2);
/// assert_eq!(est.mean(1), 0.5);
/// assert_eq!(est.count(0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArmEstimators {
    counts: Vec<u64>,
    means: Vec<f64>,
}

impl ArmEstimators {
    /// Fresh estimators for `len` arms, all with zero observations.
    pub fn new(len: usize) -> Self {
        ArmEstimators {
            counts: vec![0; len],
            means: vec![0.0; len],
        }
    }

    /// Number of arms tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if no arms are tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Observation count of arm `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Current sample mean of arm `i` (0 before the first observation).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn mean(&self, i: usize) -> f64 {
        self.means[i]
    }

    /// The flat observation-count array.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The flat sample-mean array.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Folds one observation of arm `i` into its mean (the [`RunningMean`]
    /// recurrence, bit for bit).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn update(&mut self, i: usize, value: f64) {
        self.counts[i] += 1;
        self.means[i] += (value - self.means[i]) / self.counts[i] as f64;
    }

    /// Resets every arm to its initial state.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.means.fill(0.0);
    }
}

/// Index of the maximum of `values`, breaking ties towards the **last**
/// maximum — the selection `Iterator::max_by` makes with a
/// `partial_cmp(..).unwrap_or(Equal)` comparator. The policies' single-pass
/// argmax scans use this so that converting them away from comparator-based
/// `max_by` keeps every selection (and hence every golden trace) bit-identical.
///
/// Incomparable values (NaN) are treated as equal, so a later NaN replaces the
/// incumbent, exactly like the `unwrap_or(Equal)` comparators did.
pub fn argmax_last(values: impl IntoIterator<Item = f64>) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, v) in values.into_iter().enumerate() {
        let keep_incumbent = best
            .map(|(_, b)| b.partial_cmp(&v) == Some(std::cmp::Ordering::Greater))
            .unwrap_or(false);
        if !keep_incumbent {
            best = Some((i, v));
        }
    }
    best.map(|(i, _)| i)
}

/// The MOSS-style index `mean + sqrt(log⁺(t / (k · count)) / count)`.
///
/// * `mean`, `count` — the running estimate of the candidate;
/// * `t` — the current time slot (1-based);
/// * `k` — the number of candidates competing for play (arms `K`, or com-arms
///   `|F|` in Algorithm 2).
///
/// Candidates with `count == 0` get `f64::INFINITY` so they are explored first,
/// which matches the usual initialisation of MOSS/UCB implementations.
pub fn moss_index(mean: f64, count: u64, t: usize, k: usize) -> f64 {
    if count == 0 {
        return f64::INFINITY;
    }
    let count_f = count as f64;
    let k_f = k.max(1) as f64;
    mean + (log_plus(t as f64 / (k_f * count_f)) / count_f).sqrt()
}

/// The DFL-CSR per-arm index of Equation (47):
/// `mean + sqrt(max(ln(t^{2/3} / (K · count)), 0) / count)`.
///
/// For unobserved arms (`count == 0`) the index is a finite value strictly
/// larger than any observed arm's index at the same `t`, so that the
/// combinatorial oracle (which sums indices) keeps producing finite totals while
/// still prioritising exploration of unobserved arms.
pub fn csr_index(mean: f64, count: u64, t: usize, k: usize) -> f64 {
    let t_pow = (t.max(1) as f64).powf(2.0 / 3.0);
    if count == 0 {
        // Upper bound of any observed index at time t, plus a margin.
        return 1.0 + (log_plus(t_pow) + 1.0).sqrt();
    }
    let count_f = count as f64;
    let k_f = k.max(1) as f64;
    mean + (log_plus(t_pow / (k_f * count_f)) / count_f).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_plus_truncates_at_zero() {
        assert_eq!(log_plus(0.5), 0.0);
        assert_eq!(log_plus(0.0), 0.0);
        assert_eq!(log_plus(-3.0), 0.0);
        assert_eq!(log_plus(1.0), 0.0);
        assert!((log_plus(std::f64::consts::E) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn running_mean_matches_batch_mean() {
        let data = [0.3, 0.9, 0.1, 0.5, 0.7, 0.2];
        let mut m = RunningMean::new();
        for &x in &data {
            m.update(x);
        }
        let batch = data.iter().sum::<f64>() / data.len() as f64;
        assert_eq!(m.count(), data.len() as u64);
        assert!((m.mean() - batch).abs() < 1e-12);
    }

    #[test]
    fn running_mean_reset() {
        let mut m = RunningMean::new();
        assert!(m.is_empty());
        m.update(1.0);
        assert!(!m.is_empty());
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.mean(), 0.0);
    }

    #[test]
    fn moss_index_prefers_unobserved() {
        assert_eq!(moss_index(0.5, 0, 10, 5), f64::INFINITY);
        assert!(moss_index(0.5, 1, 10, 5).is_finite());
    }

    #[test]
    fn moss_index_decreases_with_count() {
        let t = 10_000;
        let k = 10;
        let few = moss_index(0.5, 5, t, k);
        let many = moss_index(0.5, 500, t, k);
        assert!(few > many);
        // With enough observations the bonus vanishes (log⁺ truncation).
        let saturated = moss_index(0.5, 10_000, t, k);
        assert_eq!(saturated, 0.5);
    }

    #[test]
    fn moss_index_increases_with_time() {
        let early = moss_index(0.5, 10, 100, 10);
        let late = moss_index(0.5, 10, 100_000, 10);
        assert!(late > early);
    }

    #[test]
    fn moss_index_handles_degenerate_k() {
        // k = 0 must not divide by zero.
        let idx = moss_index(0.5, 10, 100, 0);
        assert!(idx.is_finite());
    }

    #[test]
    fn csr_index_unobserved_dominates_observed() {
        for &t in &[1usize, 10, 1_000, 100_000] {
            let unobserved = csr_index(0.0, 0, t, 10);
            // The largest possible observed index has mean 1 and count 1.
            let best_observed = csr_index(1.0, 1, t, 10);
            assert!(
                unobserved > best_observed,
                "t={t}: unobserved {unobserved} <= observed {best_observed}"
            );
            assert!(unobserved.is_finite());
        }
    }

    #[test]
    fn csr_index_decays_with_count() {
        let t = 10_000;
        assert!(csr_index(0.5, 2, t, 10) > csr_index(0.5, 200, t, 10));
    }

    #[test]
    fn arm_estimators_match_running_means_bit_for_bit() {
        let mut soa = ArmEstimators::new(3);
        let mut aos = [RunningMean::new(); 3];
        let stream = [(0, 0.3), (1, 0.9), (0, 0.1), (2, 0.55), (0, 0.7), (1, 0.2)];
        for &(i, x) in &stream {
            soa.update(i, x);
            aos[i].update(x);
        }
        for (i, arm) in aos.iter().enumerate() {
            assert_eq!(soa.count(i), arm.count());
            assert_eq!(soa.mean(i).to_bits(), arm.mean().to_bits(), "arm {i}");
        }
        assert_eq!(soa.means().len(), 3);
        assert_eq!(soa.counts().len(), 3);
        soa.reset();
        assert_eq!(soa, ArmEstimators::new(3));
    }

    #[test]
    fn argmax_last_matches_max_by() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![1.0],
            vec![0.1, 0.5, 0.5, 0.2],
            vec![f64::INFINITY, f64::INFINITY, f64::INFINITY],
            vec![0.3, f64::NAN, 0.2],
            vec![f64::NAN, 0.3, 0.2],
            vec![1.0, 2.0, 3.0],
            vec![3.0, 2.0, 1.0],
        ];
        for values in cases {
            let reference = (0..values.len()).max_by(|&a, &b| {
                values[a]
                    .partial_cmp(&values[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            assert_eq!(
                argmax_last(values.iter().copied()),
                reference,
                "values {values:?}"
            );
        }
    }
}
