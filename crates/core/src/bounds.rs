//! Closed-form evaluation of the paper's regret bounds (Theorems 1–4).
//!
//! These functions let the experiment harness print the theoretical bound next
//! to the measured regret (EXPERIMENTS.md reports both), and power the
//! `bounds` binary that sweeps the bounds over `n`, `K`, `C`, and `N`.

/// Theorem 1: regret of DFL-SSO after `n` slots over `K` arms whose induced
/// high-gap subgraph admits a clique cover of size `clique_cover`.
///
/// `R_n ≤ 15.94 · sqrt(nK) + 0.74 · C · sqrt(n / K)`
pub fn theorem1_dfl_sso(n: usize, num_arms: usize, clique_cover: usize) -> f64 {
    let n = n as f64;
    let k = (num_arms.max(1)) as f64;
    15.94 * (n * k).sqrt() + 0.74 * clique_cover as f64 * (n / k).sqrt()
}

/// Theorem 2: regret of DFL-CSO after `n` slots over `|F|` com-arms whose
/// strategy relation graph admits a clique cover of size `clique_cover`.
///
/// `R_n ≤ 15.94 · sqrt(n |F|) + 0.74 · C · sqrt(n / |F|)`
pub fn theorem2_dfl_cso(n: usize, num_strategies: usize, clique_cover: usize) -> f64 {
    theorem1_dfl_sso(n, num_strategies, clique_cover)
}

/// The distribution-free bound of plain MOSS over `k` candidates, `49·sqrt(nk)`,
/// quoted by the paper as the comparison point for Theorem 2 ("the regret bound
/// would be 49·sqrt(n|F|)").
pub fn moss_bound(n: usize, k: usize) -> f64 {
    49.0 * ((n * k.max(1)) as f64).sqrt()
}

/// Theorem 3: regret of DFL-SSR after `n` slots over `K` arms.
///
/// `R_n ≤ 49 · K · sqrt(nK)`
pub fn theorem3_dfl_ssr(n: usize, num_arms: usize) -> f64 {
    let k = num_arms.max(1) as f64;
    49.0 * k * ((n as f64) * k).sqrt()
}

/// Theorem 4: regret of DFL-CSR after `n` slots over `K` arms with maximum
/// observation-set size `N = max_x |Y_x|`.
///
/// `R_n ≤ NK + (sqrt(eK) + 8(1+N)N³)·n^{2/3} + (1 + 4·sqrt(K)·N²/e)·N²·K·n^{5/6}`
pub fn theorem4_dfl_csr(n: usize, num_arms: usize, max_observation_set: usize) -> f64 {
    let n = n as f64;
    let k = num_arms.max(1) as f64;
    let big_n = max_observation_set.max(1) as f64;
    let e = std::f64::consts::E;
    big_n * k
        + ((e * k).sqrt() + 8.0 * (1.0 + big_n) * big_n.powi(3)) * n.powf(2.0 / 3.0)
        + (1.0 + 4.0 * k.sqrt() * big_n * big_n / e) * big_n * big_n * k * n.powf(5.0 / 6.0)
}

/// Whether a bound certifies *zero regret* in the paper's sense
/// (`R_n / n → 0`): evaluates `bound(n)/n` at a large horizon and at a horizon
/// ten times larger and checks that the average regret decreased.
pub fn certifies_zero_regret(bound: impl Fn(usize) -> f64, horizon: usize) -> bool {
    let horizon = horizon.max(10);
    let early = bound(horizon) / horizon as f64;
    let late = bound(horizon * 10) / (horizon * 10) as f64;
    late < early
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_matches_hand_computation() {
        // n = 10_000, K = 100, C = 20:
        // 15.94·sqrt(1e6) + 0.74·20·sqrt(100) = 15_940 + 148.
        let bound = theorem1_dfl_sso(10_000, 100, 20);
        assert!((bound - (15_940.0 + 148.0)).abs() < 1e-9);
    }

    #[test]
    fn theorem2_equals_theorem1_with_strategies_substituted() {
        assert_eq!(
            theorem2_dfl_cso(5_000, 37, 5),
            theorem1_dfl_sso(5_000, 37, 5)
        );
    }

    #[test]
    fn moss_bound_is_larger_than_theorem2_for_modest_cover() {
        // The paper's claim: 15.94·sqrt(n|F|) + 0.74·C·sqrt(n/|F|) < 49·sqrt(n|F|)
        // whenever C is not astronomically large.
        let n = 10_000;
        let f = 200;
        assert!(theorem2_dfl_cso(n, f, f) < moss_bound(n, f));
    }

    #[test]
    fn theorem3_matches_hand_computation() {
        // 49 · 10 · sqrt(1000·10) = 490·100 = 49_000.
        let bound = theorem3_dfl_ssr(1_000, 10);
        assert!((bound - 49_000.0).abs() < 1e-9);
    }

    #[test]
    fn theorem4_is_monotone_in_n_k_and_big_n() {
        let base = theorem4_dfl_csr(10_000, 20, 5);
        assert!(theorem4_dfl_csr(20_000, 20, 5) > base);
        assert!(theorem4_dfl_csr(10_000, 40, 5) > base);
        assert!(theorem4_dfl_csr(10_000, 20, 10) > base);
        assert!(base > 0.0);
    }

    #[test]
    fn all_bounds_certify_zero_regret() {
        assert!(certifies_zero_regret(
            |n| theorem1_dfl_sso(n, 100, 30),
            10_000
        ));
        assert!(certifies_zero_regret(
            |n| theorem2_dfl_cso(n, 500, 100),
            10_000
        ));
        assert!(certifies_zero_regret(|n| theorem3_dfl_ssr(n, 100), 10_000));
        // Theorem 4 grows like n^{5/6}, still sublinear.
        assert!(certifies_zero_regret(
            |n| theorem4_dfl_csr(n, 20, 6),
            10_000
        ));
        // A linear "bound" does not certify zero regret.
        assert!(!certifies_zero_regret(|n| 0.5 * n as f64, 10_000));
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        assert!(theorem1_dfl_sso(0, 0, 0) >= 0.0);
        assert!(theorem3_dfl_ssr(0, 0) >= 0.0);
        assert!(theorem4_dfl_csr(0, 0, 0) >= 0.0);
        assert!(moss_bound(0, 0) >= 0.0);
    }
}
