//! Policy traits shared by the paper's algorithms and the baselines.
//!
//! The simulation engine drives policies through these two traits. The contract
//! is the "pull then learn" loop of Section II: at time slot `t` the policy
//! proposes an arm (or a strategy), the environment returns feedback, and the
//! policy folds whatever part of that feedback it is allowed to use into its
//! internal state.
//!
//! Policies that ignore side observations (e.g. plain MOSS or UCB1) simply use
//! only the entry of `observations` corresponding to the pulled arm.

use netband_env::{CombinatorialFeedback, SinglePlayFeedback};

use crate::estimator::ArmEstimators;
use crate::state::{PolicyState, PolicyStateError};
use crate::ArmId;

/// A policy that pulls one arm per time slot (single-play scenarios SSO / SSR).
pub trait SinglePlayPolicy: Send {
    /// A short human-readable name used in reports and plots (e.g. `"DFL-SSO"`).
    fn name(&self) -> &'static str;

    /// Selects the arm to pull at time slot `t` (1-based).
    fn select_arm(&mut self, t: usize) -> ArmId;

    /// Observes the feedback of the pull selected at this time slot.
    fn update(&mut self, t: usize, feedback: &SinglePlayFeedback);

    /// Resets the policy to its initial state (a fresh replication).
    fn reset(&mut self);

    /// The policy's per-arm estimators, when it keeps any — the observability
    /// layer reads pull counts and empirical means from here. Policies whose
    /// state is not a per-arm [`ArmEstimators`] SoA (e.g. EXP3's weights)
    /// return `None` (the provided default).
    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        None
    }

    /// Captures the policy's learned state for durable persistence (see
    /// [`crate::state`]); `None` (the provided default) means the policy does
    /// not support it. Structure is not captured — a durable restore rebuilds
    /// the policy from its scenario document, then calls
    /// [`SinglePlayPolicy::load_state`].
    fn save_state(&self) -> Option<PolicyState> {
        None
    }

    /// Restores state captured by [`SinglePlayPolicy::save_state`] into a
    /// freshly built policy of the same structure; the restored policy must
    /// continue the decision stream f64-bit-identically.
    ///
    /// # Errors
    ///
    /// [`PolicyStateError::Unsupported`] (the provided default) when the
    /// policy has no durable state; [`PolicyStateError::Mismatch`] when the
    /// bag does not fit the policy's shape.
    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let _ = state;
        Err(PolicyStateError::Unsupported {
            policy: self.name(),
        })
    }
}

/// A policy that pulls a combinatorial strategy per time slot (CSO / CSR).
///
/// # The decide / apply-feedback split
///
/// Selection ([`CombinatorialPolicy::select_strategy_into`]) and learning
/// ([`CombinatorialPolicy::update`]) are independent entry points on purpose:
/// a driver may decide for many interleaved policy instances before any of
/// their feedback arrives, and apply that feedback later (possibly delayed,
/// out of order, and in batches). The simulation runner is the degenerate
/// caller that alternates the two per round; the serving engine
/// (`netband-serve`) exploits the split to host many tenants per thread.
pub trait CombinatorialPolicy: Send {
    /// A short human-readable name used in reports and plots (e.g. `"DFL-CSR"`).
    fn name(&self) -> &'static str;

    /// Selects the strategy to pull at time slot `t` (1-based).
    ///
    /// The returned strategy must be feasible for the family the policy was
    /// constructed with; the environment rejects empty or out-of-range
    /// strategies.
    fn select_strategy(&mut self, t: usize) -> Vec<ArmId>;

    /// Selects the strategy to pull at time slot `t` (1-based), writing it
    /// into `out` (cleared first) — the allocation-free form of
    /// [`CombinatorialPolicy::select_strategy`], producing an identical
    /// strategy. Policies whose internal selection is already allocation-free
    /// override the provided implementation (which delegates and copies) so a
    /// warm `out` makes the whole decide allocation-free.
    fn select_strategy_into(&mut self, t: usize, out: &mut Vec<ArmId>) {
        let strategy = self.select_strategy(t);
        out.clear();
        out.extend_from_slice(&strategy);
    }

    /// Observes the feedback of the pull selected at this time slot.
    fn update(&mut self, t: usize, feedback: &CombinatorialFeedback);

    /// Resets the policy to its initial state (a fresh replication).
    fn reset(&mut self);

    /// The policy's per-arm estimators, when it keeps any; see
    /// [`SinglePlayPolicy::arm_estimators`]. Note that DFL-CSO estimates
    /// dense *strategy* ids ("com-arms"), not base arms — its estimators are
    /// still exposed here, indexed by strategy.
    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        None
    }

    /// Captures the policy's learned state for durable persistence; see
    /// [`SinglePlayPolicy::save_state`].
    fn save_state(&self) -> Option<PolicyState> {
        None
    }

    /// Restores state captured by [`CombinatorialPolicy::save_state`]; see
    /// [`SinglePlayPolicy::load_state`].
    ///
    /// # Errors
    ///
    /// [`PolicyStateError::Unsupported`] (the provided default) when the
    /// policy has no durable state; [`PolicyStateError::Mismatch`] when the
    /// bag does not fit the policy's shape.
    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let _ = state;
        Err(PolicyStateError::Unsupported {
            policy: self.name(),
        })
    }
}

/// Object-safe cloning for boxed single-play policies: snapshotting engines
/// and spec builders capture a policy's learned state by cloning the box.
/// Implemented automatically for every `SinglePlayPolicy + Clone` type, which
/// covers all policies in `netband-core` and `netband-baselines`.
pub trait DynSinglePolicy: SinglePlayPolicy {
    /// Clones the policy behind the box.
    fn clone_box(&self) -> Box<dyn DynSinglePolicy>;
}

impl<P: SinglePlayPolicy + Clone + 'static> DynSinglePolicy for P {
    fn clone_box(&self) -> Box<dyn DynSinglePolicy> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn DynSinglePolicy> {
    fn clone(&self) -> Self {
        // `(**self)` forces the inner policy's `clone_box`; plain
        // `self.clone_box()` would resolve to the blanket impl on the Box
        // itself (boxes are policies too) and recurse forever.
        (**self).clone_box()
    }
}

/// Object-safe cloning for boxed combinatorial policies; see
/// [`DynSinglePolicy`].
pub trait DynCombinatorialPolicy: CombinatorialPolicy {
    /// Clones the policy behind the box.
    fn clone_box(&self) -> Box<dyn DynCombinatorialPolicy>;
}

impl<P: CombinatorialPolicy + Clone + 'static> DynCombinatorialPolicy for P {
    fn clone_box(&self) -> Box<dyn DynCombinatorialPolicy> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn DynCombinatorialPolicy> {
    fn clone(&self) -> Self {
        // See `Clone for Box<dyn DynSinglePolicy>`: deref past the box.
        (**self).clone_box()
    }
}

impl<P: SinglePlayPolicy + ?Sized> SinglePlayPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn select_arm(&mut self, t: usize) -> ArmId {
        (**self).select_arm(t)
    }
    fn update(&mut self, t: usize, feedback: &SinglePlayFeedback) {
        (**self).update(t, feedback)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    // Must be forwarded explicitly: the provided default would hide the inner
    // policy's estimators behind a blanket `None`.
    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        (**self).arm_estimators()
    }
    // Same: the provided defaults would make every boxed policy non-durable.
    fn save_state(&self) -> Option<PolicyState> {
        (**self).save_state()
    }
    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        (**self).load_state(state)
    }
}

impl<P: CombinatorialPolicy + ?Sized> CombinatorialPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn select_strategy(&mut self, t: usize) -> Vec<ArmId> {
        (**self).select_strategy(t)
    }
    fn select_strategy_into(&mut self, t: usize, out: &mut Vec<ArmId>) {
        (**self).select_strategy_into(t, out)
    }
    fn update(&mut self, t: usize, feedback: &CombinatorialFeedback) {
        (**self).update(t, feedback)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    // See the single-play Box impl: forward past the provided default.
    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        (**self).arm_estimators()
    }
    fn save_state(&self) -> Option<PolicyState> {
        (**self).save_state()
    }
    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        (**self).load_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal single-play policy used to check the Box forwarding impls.
    struct RoundRobin {
        k: usize,
        next: usize,
        updates: usize,
    }

    impl SinglePlayPolicy for RoundRobin {
        fn name(&self) -> &'static str {
            "RoundRobin"
        }
        fn select_arm(&mut self, _t: usize) -> ArmId {
            let arm = self.next;
            self.next = (self.next + 1) % self.k;
            arm
        }
        fn update(&mut self, _t: usize, _feedback: &SinglePlayFeedback) {
            self.updates += 1;
        }
        fn reset(&mut self) {
            self.next = 0;
            self.updates = 0;
        }
    }

    /// A minimal combinatorial policy used to check the provided
    /// `select_strategy_into` and the Box forwarding impls.
    struct PairCycler {
        k: usize,
        next: usize,
    }

    impl CombinatorialPolicy for PairCycler {
        fn name(&self) -> &'static str {
            "PairCycler"
        }
        fn select_strategy(&mut self, _t: usize) -> Vec<ArmId> {
            let s = vec![self.next, (self.next + 1) % self.k];
            self.next = (self.next + 1) % self.k;
            s
        }
        fn update(&mut self, _t: usize, _feedback: &CombinatorialFeedback) {}
        fn reset(&mut self) {
            self.next = 0;
        }
    }

    #[test]
    fn default_select_strategy_into_matches_select_strategy() {
        let mut by_value = PairCycler { k: 5, next: 0 };
        let mut by_buffer = PairCycler { k: 5, next: 0 };
        let mut buf = vec![99, 99, 99];
        for t in 1..=7 {
            let expected = by_value.select_strategy(t);
            by_buffer.select_strategy_into(t, &mut buf);
            assert_eq!(buf, expected, "t={t}");
        }
    }

    #[test]
    fn boxed_combinatorial_policy_forwards_select_strategy_into() {
        let mut boxed: Box<dyn CombinatorialPolicy> = Box::new(PairCycler { k: 3, next: 0 });
        let mut buf = Vec::new();
        boxed.select_strategy_into(1, &mut buf);
        assert_eq!(buf, vec![0, 1]);
        boxed.select_strategy_into(2, &mut buf);
        assert_eq!(buf, vec![1, 2]);
        boxed.reset();
        assert_eq!(boxed.select_strategy(3), vec![0, 1]);
    }

    #[test]
    fn boxed_policies_forward_all_methods() {
        let mut boxed: Box<dyn SinglePlayPolicy> = Box::new(RoundRobin {
            k: 3,
            next: 0,
            updates: 0,
        });
        assert_eq!(boxed.name(), "RoundRobin");
        assert_eq!(boxed.select_arm(1), 0);
        assert_eq!(boxed.select_arm(2), 1);
        let fb = SinglePlayFeedback {
            arm: 1,
            direct_reward: 0.5,
            side_reward: 0.5,
            observations: vec![(1, 0.5)],
        };
        boxed.update(2, &fb);
        boxed.reset();
        assert_eq!(boxed.select_arm(3), 0);
    }
}
