//! Policy traits shared by the paper's algorithms and the baselines.
//!
//! The simulation engine drives policies through these two traits. The contract
//! is the "pull then learn" loop of Section II: at time slot `t` the policy
//! proposes an arm (or a strategy), the environment returns feedback, and the
//! policy folds whatever part of that feedback it is allowed to use into its
//! internal state.
//!
//! Policies that ignore side observations (e.g. plain MOSS or UCB1) simply use
//! only the entry of `observations` corresponding to the pulled arm.

use netband_env::{CombinatorialFeedback, SinglePlayFeedback};

use crate::ArmId;

/// A policy that pulls one arm per time slot (single-play scenarios SSO / SSR).
pub trait SinglePlayPolicy: Send {
    /// A short human-readable name used in reports and plots (e.g. `"DFL-SSO"`).
    fn name(&self) -> &'static str;

    /// Selects the arm to pull at time slot `t` (1-based).
    fn select_arm(&mut self, t: usize) -> ArmId;

    /// Observes the feedback of the pull selected at this time slot.
    fn update(&mut self, t: usize, feedback: &SinglePlayFeedback);

    /// Resets the policy to its initial state (a fresh replication).
    fn reset(&mut self);
}

/// A policy that pulls a combinatorial strategy per time slot (CSO / CSR).
pub trait CombinatorialPolicy: Send {
    /// A short human-readable name used in reports and plots (e.g. `"DFL-CSR"`).
    fn name(&self) -> &'static str;

    /// Selects the strategy to pull at time slot `t` (1-based).
    ///
    /// The returned strategy must be feasible for the family the policy was
    /// constructed with; the environment rejects empty or out-of-range
    /// strategies.
    fn select_strategy(&mut self, t: usize) -> Vec<ArmId>;

    /// Observes the feedback of the pull selected at this time slot.
    fn update(&mut self, t: usize, feedback: &CombinatorialFeedback);

    /// Resets the policy to its initial state (a fresh replication).
    fn reset(&mut self);
}

impl<P: SinglePlayPolicy + ?Sized> SinglePlayPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn select_arm(&mut self, t: usize) -> ArmId {
        (**self).select_arm(t)
    }
    fn update(&mut self, t: usize, feedback: &SinglePlayFeedback) {
        (**self).update(t, feedback)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

impl<P: CombinatorialPolicy + ?Sized> CombinatorialPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn select_strategy(&mut self, t: usize) -> Vec<ArmId> {
        (**self).select_strategy(t)
    }
    fn update(&mut self, t: usize, feedback: &CombinatorialFeedback) {
        (**self).update(t, feedback)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal single-play policy used to check the Box forwarding impls.
    struct RoundRobin {
        k: usize,
        next: usize,
        updates: usize,
    }

    impl SinglePlayPolicy for RoundRobin {
        fn name(&self) -> &'static str {
            "RoundRobin"
        }
        fn select_arm(&mut self, _t: usize) -> ArmId {
            let arm = self.next;
            self.next = (self.next + 1) % self.k;
            arm
        }
        fn update(&mut self, _t: usize, _feedback: &SinglePlayFeedback) {
            self.updates += 1;
        }
        fn reset(&mut self) {
            self.next = 0;
            self.updates = 0;
        }
    }

    #[test]
    fn boxed_policies_forward_all_methods() {
        let mut boxed: Box<dyn SinglePlayPolicy> = Box::new(RoundRobin {
            k: 3,
            next: 0,
            updates: 0,
        });
        assert_eq!(boxed.name(), "RoundRobin");
        assert_eq!(boxed.select_arm(1), 0);
        assert_eq!(boxed.select_arm(2), 1);
        let fb = SinglePlayFeedback {
            arm: 1,
            direct_reward: 0.5,
            side_reward: 0.5,
            observations: vec![(1, 0.5)],
        };
        boxed.update(2, &fb);
        boxed.reset();
        assert_eq!(boxed.select_arm(3), 0);
    }
}
