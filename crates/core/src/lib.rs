//! The learning policies of *Networked Stochastic Multi-Armed Bandits with
//! Combinatorial Strategies* (Tang & Zhou, ICDCS 2017).
//!
//! The paper studies a decision maker facing `K` arms connected by a relation
//! graph: pulling an arm also yields a *side bonus* — an observation or a
//! reward — for the arm's neighbours. Crossing the play mode
//! (single / combinatorial) with the bonus type (observation / reward) gives
//! four scenarios, each with its own distribution-free, zero-regret policy:
//!
//! | Scenario | Policy | Module |
//! |---|---|---|
//! | Single-play, side observation | DFL-SSO (Algorithm 1) | [`dfl_sso`] |
//! | Combinatorial-play, side observation | DFL-CSO (Algorithm 2) | [`dfl_cso`] |
//! | Single-play, side reward | DFL-SSR (Algorithm 3) | [`dfl_ssr`] |
//! | Combinatorial-play, side reward | DFL-CSR (Algorithm 4) | [`dfl_csr`] |
//!
//! The shared machinery lives in [`estimator`] (running means and MOSS-style
//! indices) and [`policy`] (the [`SinglePlayPolicy`] / [`CombinatorialPolicy`]
//! traits that the simulation engine drives). The closed-form regret bounds of
//! Theorems 1–4 are evaluated by [`bounds`].
//!
//! # Quickstart
//!
//! ```
//! use netband_core::prelude::*;
//! use netband_env::{ArmSet, NetworkedBandit};
//! use netband_graph::generators;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let graph = generators::erdos_renyi(20, 0.3, &mut rng);
//! let bandit = NetworkedBandit::new(graph.clone(), ArmSet::random_bernoulli(20, &mut rng))?;
//! let mut policy = DflSso::new(graph);
//!
//! let mut total_reward = 0.0;
//! for t in 1..=1_000 {
//!     let arm = policy.select_arm(t);
//!     let feedback = bandit.pull_single(arm, &mut rng);
//!     total_reward += feedback.direct_reward;
//!     policy.update(t, &feedback);
//! }
//! assert!(total_reward > 0.0);
//! # Ok::<(), netband_env::EnvError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod cts;
pub mod dfl_cso;
pub mod dfl_csr;
pub mod dfl_sso;
pub mod dfl_ssr;
pub mod estimator;
pub mod heuristics;
pub mod kernels;
pub mod policy;
pub mod state;

pub use cts::CombinatorialThompson;
pub use dfl_cso::DflCso;
pub use dfl_csr::DflCsr;
pub use dfl_sso::DflSso;
pub use dfl_ssr::DflSsr;
pub use estimator::EstimatorKind;
pub use heuristics::{DflSsoGreedyNeighbor, DflSsrGreedyNeighbor};
pub use policy::{CombinatorialPolicy, DynCombinatorialPolicy, DynSinglePolicy, SinglePlayPolicy};
pub use state::{PolicyState, PolicyStateError, PolicyStateReader};

/// Identifier of an arm; re-exported from `netband-graph`.
pub type ArmId = netband_graph::ArmId;

/// Convenient glob import for downstream code and examples.
pub mod prelude {
    pub use crate::bounds;
    pub use crate::cts::CombinatorialThompson;
    pub use crate::dfl_cso::DflCso;
    pub use crate::dfl_csr::DflCsr;
    pub use crate::dfl_sso::DflSso;
    pub use crate::dfl_ssr::DflSsr;
    pub use crate::estimator::{
        argmax_last, csr_index, csr_index_weighted, log_plus, moss_index, moss_index_weighted,
        ArmEstimators, EstimatorKind, RunningMean,
    };
    pub use crate::heuristics::{DflSsoGreedyNeighbor, DflSsrGreedyNeighbor};
    pub use crate::kernels;
    pub use crate::policy::{
        CombinatorialPolicy, DynCombinatorialPolicy, DynSinglePolicy, SinglePlayPolicy,
    };
    pub use crate::state::{PolicyState, PolicyStateError, PolicyStateReader};
    pub use crate::ArmId;
}
