//! DFL-CSR — Distribution-Free Learning for Combinatorial-play with Side Reward
//! (Algorithm 4 of the paper).
//!
//! The reward of a strategy `s_x` is the sum of the rewards of *all* arms in its
//! observation set `Y_x = ∪_{i ∈ s_x} N_i`. Learning per com-arm would blow up
//! with `|F|`, so Algorithm 4 learns the direct reward of the individual arms
//! and, at each time slot, hands the per-arm indices
//!
//! ```text
//! w_i(t) = X̄_i + sqrt( max(ln(t^{2/3} / (K · O_i)), 0) / O_i )
//! ```
//!
//! to a combinatorial oracle that returns the feasible strategy maximising
//! `Σ_{i ∈ Y_x} w_i(t)` (Equation 47). The paper assumes this per-round
//! optimisation can be solved optimally; we use the oracles of
//! [`netband_env::feasible`], which are exact on enumerable families and greedy
//! (max-coverage) otherwise.

use netband_env::feasible::FeasibleSet;
use netband_env::{CombinatorialFeedback, StrategyFamily};
use netband_graph::{RelationGraph, StrategyBank};

use crate::estimator::{csr_index, ArmEstimators};
use crate::kernels;
use crate::policy::CombinatorialPolicy;
use crate::state::{PolicyState, PolicyStateError, PolicyStateReader};
use crate::ArmId;

/// The enumerated feasible set as two aligned [`StrategyBank`] tables, so the
/// per-round oracle is a linear scan over contiguous arrays: row `x` of
/// `strategies` is the strategy `s_x`, row `x` of `observation_sets` its
/// observation set `Y_x` (both sorted, preserving the enumeration order and
/// hence the floating-point summation order of the layouts it replaces).
#[derive(Debug, Clone)]
struct EnumeratedFamily {
    strategies: StrategyBank,
    observation_sets: StrategyBank,
}

impl EnumeratedFamily {
    fn build(graph: &RelationGraph, strategies: StrategyBank) -> Self {
        let mut observation_sets = StrategyBank::with_capacity(strategies.len(), 0);
        for s in strategies.iter() {
            observation_sets.push_row(&graph.closed_neighborhood_of_set(s));
        }
        EnumeratedFamily {
            strategies,
            observation_sets,
        }
    }

    fn strategy(&self, x: usize) -> &[ArmId] {
        self.strategies.row(x)
    }
}

/// The DFL-CSR policy (Algorithm 4).
#[derive(Debug, Clone)]
pub struct DflCsr {
    graph: RelationGraph,
    family: StrategyFamily,
    /// Flat per-arm observation counts and means, keyed by dense arm id.
    estimates: ArmEstimators,
    /// Flattened enumeration of `(strategy, Y_x)` pairs when the family is
    /// small enough to enumerate; lets the per-round oracle avoid recomputing
    /// the observation sets at every time slot.
    enumerated: Option<EnumeratedFamily>,
    /// Per-round index vector `w_i(t)`, reused across rounds.
    weights_scratch: Vec<f64>,
}

impl DflCsr {
    /// Creates the policy for the given relation graph and feasible family.
    pub fn new(graph: RelationGraph, family: StrategyFamily) -> Self {
        let k = graph.num_vertices();
        let enumerated = family
            .enumerate(&graph)
            .map(|strategies| EnumeratedFamily::build(&graph, strategies));
        DflCsr {
            graph,
            family,
            estimates: ArmEstimators::new(k),
            enumerated,
            weights_scratch: vec![0.0; k],
        }
    }

    /// Number of arms `K`.
    pub fn num_arms(&self) -> usize {
        self.estimates.len()
    }

    /// The relation graph this policy was built for.
    pub fn graph(&self) -> &RelationGraph {
        &self.graph
    }

    /// The feasible strategy family the per-round oracle optimises over.
    pub fn family(&self) -> &StrategyFamily {
        &self.family
    }

    /// Observation count `O_i` of an arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn observation_count(&self, arm: ArmId) -> u64 {
        self.estimates.count(arm)
    }

    /// Empirical mean `X̄_i` of an arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn empirical_mean(&self, arm: ArmId) -> f64 {
        self.estimates.mean(arm)
    }

    /// The per-arm index `w_i(t)` of Equation (47).
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn arm_index(&self, arm: ArmId, t: usize) -> f64 {
        csr_index(
            self.estimates.mean(arm),
            self.estimates.count(arm),
            t,
            self.num_arms(),
        )
    }

    /// The full per-arm index vector at time `t`.
    pub fn index_vector(&self, t: usize) -> Vec<f64> {
        (0..self.num_arms()).map(|i| self.arm_index(i, t)).collect()
    }
}

impl CombinatorialPolicy for DflCsr {
    fn name(&self) -> &'static str {
        "DFL-CSR"
    }

    fn select_strategy(&mut self, t: usize) -> Vec<ArmId> {
        let mut out = Vec::new();
        self.select_strategy_into(t, &mut out);
        out
    }

    fn select_strategy_into(&mut self, t: usize, out: &mut Vec<ArmId>) {
        // Per-arm score table `w_i(t)`, computed once per decide by the
        // chunked kernel (the `t^{2/3}` power and zero-count sentinel are
        // hoisted out of the sweep; values are bit-identical to `arm_index`).
        kernels::csr_scores_into(
            self.estimates.means(),
            self.estimates.counts(),
            t,
            self.num_arms(),
            &mut self.weights_scratch,
        );
        out.clear();
        if let Some(enumerated) = &self.enumerated {
            // Fast path: the feasible set was enumerated at construction, so
            // the per-round optimisation is one contiguous scan of the
            // flattened Y_x rows over the score table; `argmax_row_sums`
            // keeps the row-order summation and last-max tie-breaking of the
            // comparator-based scan it replaces.
            if let Some(x) = enumerated
                .observation_sets
                .argmax_row_sums(&self.weights_scratch)
            {
                out.extend_from_slice(enumerated.strategy(x));
                return;
            }
        }
        // Fallback for non-enumerable families: the oracle allocates its
        // answer, so hand the vector over instead of copying it into the warm
        // buffer (the allocation is unavoidable here, the memcpy is not).
        *out = self
            .family
            .argmax_by_neighborhood_weights(&self.weights_scratch, &self.graph)
            .expect("DFL-CSR requires a non-empty feasible strategy family");
    }

    fn update(&mut self, _t: usize, feedback: &CombinatorialFeedback) {
        for &(arm, reward) in &feedback.observations {
            if arm < self.estimates.len() {
                self.estimates.update(arm, reward);
            }
        }
    }

    fn reset(&mut self) {
        self.estimates.reset();
    }

    fn arm_estimators(&self) -> Option<&ArmEstimators> {
        Some(&self.estimates)
    }

    // Durable state is the per-arm estimates; the enumerated fast path and the
    // weights scratch are derived from structure.
    fn save_state(&self) -> Option<PolicyState> {
        let mut state = PolicyState::new();
        self.estimates.save_state(&mut state);
        Some(state)
    }

    fn load_state(&mut self, state: &PolicyState) -> Result<(), PolicyStateError> {
        let mut reader = PolicyStateReader::new(self.name(), state);
        self.estimates.load_state(&mut reader)?;
        reader.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(policy: &mut DflCsr, bandit: &NetworkedBandit, n: usize, seed: u64) -> Vec<Vec<ArmId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pulls = Vec::with_capacity(n);
        for t in 1..=n {
            let s = policy.select_strategy(t);
            let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
            policy.update(t, &fb);
            pulls.push(s);
        }
        pulls
    }

    #[test]
    fn selected_strategies_are_always_feasible() {
        let mut rng = StdRng::seed_from_u64(1);
        let graph = generators::erdos_renyi(8, 0.3, &mut rng);
        let family = StrategyFamily::at_most_m(8, 3);
        let arms = ArmSet::random_bernoulli(8, &mut rng);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = DflCsr::new(graph.clone(), family.clone());
        for s in run(&mut policy, &bandit, 200, 2) {
            assert!(family.contains(&s, &graph), "infeasible strategy {s:?}");
        }
    }

    #[test]
    fn updates_every_observed_arm() {
        let graph = generators::star(5);
        let family = StrategyFamily::at_most_m(5, 1);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(5)).unwrap();
        let mut policy = DflCsr::new(graph, family);
        let mut rng = StdRng::seed_from_u64(3);
        let fb = bandit.pull_strategy(&[0], &mut rng).unwrap();
        policy.update(1, &fb);
        for arm in 0..5 {
            assert_eq!(policy.observation_count(arm), 1);
        }
    }

    #[test]
    fn converges_to_the_best_coverage_strategy() {
        // Path of 6 arms, strategies of at most 2 arms. Means make the
        // middle-heavy coverage optimal; check that the policy's tail choices
        // attain (close to) the optimal expected side reward.
        let graph = generators::path(6);
        let arms = ArmSet::bernoulli(&[0.3, 0.8, 0.3, 0.3, 0.8, 0.3]);
        let family = StrategyFamily::at_most_m(6, 2);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let optimal = bandit.best_strategy_side_mean(&family);
        let mut policy = DflCsr::new(graph, family);
        let pulls = run(&mut policy, &bandit, 5000, 7);
        let tail_mean: f64 = pulls[4000..]
            .iter()
            .map(|s| bandit.strategy_side_mean(s))
            .sum::<f64>()
            / 1000.0;
        assert!(
            optimal - tail_mean < 0.15,
            "tail expected side reward {tail_mean} vs optimal {optimal}"
        );
    }

    #[test]
    fn unobserved_arms_are_prioritised_by_the_index() {
        let graph = generators::edgeless(4);
        let family = StrategyFamily::at_most_m(4, 1);
        let mut policy = DflCsr::new(graph.clone(), family);
        let bandit = NetworkedBandit::new(graph, ArmSet::bernoulli(&[0.9, 0.1, 0.1, 0.1])).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        // After the first pull, the three unobserved arms must be visited before
        // any arm is repeated (their index dominates any observed index).
        let mut seen = std::collections::BTreeSet::new();
        for t in 1..=4 {
            let s = policy.select_strategy(t);
            seen.insert(s[0]);
            let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
            policy.update(t, &fb);
        }
        assert_eq!(seen.len(), 4, "first 4 pulls should cover all arms");
    }

    #[test]
    fn works_with_independent_set_constraints() {
        let graph = generators::path(5);
        let family = StrategyFamily::independent_sets(2);
        let arms = ArmSet::bernoulli(&[0.5, 0.6, 0.7, 0.6, 0.5]);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = DflCsr::new(graph.clone(), family.clone());
        for s in run(&mut policy, &bandit, 100, 8) {
            assert!(graph.is_independent_set(&s), "not independent: {s:?}");
            assert!(s.len() <= 2);
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let graph = generators::complete(4);
        let family = StrategyFamily::at_most_m(4, 2);
        let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(4)).unwrap();
        let mut policy = DflCsr::new(graph, family);
        run(&mut policy, &bandit, 20, 9);
        policy.reset();
        for arm in 0..4 {
            assert_eq!(policy.observation_count(arm), 0);
            assert_eq!(policy.empirical_mean(arm), 0.0);
        }
    }

    #[test]
    fn name_and_accessors() {
        let graph = generators::path(3);
        let family = StrategyFamily::at_most_m(3, 2);
        let policy = DflCsr::new(graph.clone(), family.clone());
        assert_eq!(policy.name(), "DFL-CSR");
        assert_eq!(policy.num_arms(), 3);
        assert_eq!(policy.graph(), &graph);
        assert_eq!(policy.family(), &family);
        assert_eq!(policy.index_vector(1).len(), 3);
    }
}
