//! Chunked score kernels over the flat estimator arrays.
//!
//! Every policy in this workspace scores candidates by mapping an index
//! formula over the struct-of-arrays state of
//! [`ArmEstimators`](crate::estimator::ArmEstimators) (or the
//! parallel arrays the UCB baselines keep) and taking an argmax. Written
//! naively, each per-arm evaluation recomputes the round's invariants —
//! `t as f64`, `ln t`, the `t^{2/3}` power of the CSR index, the zero-count
//! sentinel — once *per arm*, and the bounds checks of indexed access keep
//! the compiler from lifting the loop.
//!
//! The kernels here restructure those loops into the shape the optimizer can
//! work with:
//!
//! * **Hoisted invariants** — everything that depends only on `t`, `k`, or
//!   the family is computed once per call, before the sweep.
//! * **Chunk-of-N sweeps** — the hot loop walks the input slices in fixed
//!   [`CHUNK`]-wide blocks (plus a scalar tail), so the inner block is a
//!   bounds-check-free, fixed-trip-count loop the auto-vectorizer/unroller
//!   can lift.
//! * **Fused score+argmax passes** — selection kernels compute a chunk of
//!   scores into a stack buffer and fold it into the running
//!   [`argmax_last`](crate::estimator::argmax_last)-style maximum without
//!   materialising a score vector.
//!
//! # Bit-exactness contract
//!
//! A kernel never re-associates floating-point arithmetic: each element's
//! score is computed by *the same sequence of f64 operations* as the scalar
//! reference (`moss_index`, `csr_index`, the UCB formulas), with only
//! per-call invariants factored out — and only where the source expression
//! already multiplied or divided by that exact subexpression. Tie-breaking
//! replicates [`argmax_last`](crate::estimator::argmax_last) (last maximum
//! wins; NaN compares as equal, so
//! a later NaN replaces the incumbent). The golden-trace,
//! serve-equivalence, and net-equivalence suites therefore pin the kernels
//! transitively, and `tests/kernel_equivalence.rs` pins every kernel
//! directly against its scalar reference on arbitrary states, in debug and
//! release.
//!
//! The scalar references stay in [`crate::estimator`] (and as the
//! single-element index functions below); they remain the definition of the
//! math, the kernels are the shipping execution of it.

use netband_graph::CsrGraph;

use crate::estimator::{csr_index_weighted, log_plus, moss_index_weighted};

/// Width of the fixed-size inner blocks the kernels sweep in. Eight f64 lanes
/// span two AVX2 registers (or four NEON ones) and keep the scalar tail ≤ 7
/// elements.
pub const CHUNK: usize = 8;

#[inline(always)]
fn argmax_step(best: &mut Option<(usize, f64)>, i: usize, v: f64) {
    // Exactly `argmax_last`: keep the incumbent only when it is strictly
    // greater; ties and incomparable (NaN) pairs fall to the newer index.
    let keep_incumbent = best
        .map(|(_, b)| b.partial_cmp(&v) == Some(std::cmp::Ordering::Greater))
        .unwrap_or(false);
    if !keep_incumbent {
        *best = Some((i, v));
    }
}

/// Chunked sweep over two parallel slices, writing `el(a, b)` per element.
/// `out` is resized to the zipped length (like the scalar `zip` references).
#[inline(always)]
fn fill2<A: Copy, B: Copy>(out: &mut Vec<f64>, a: &[A], b: &[B], mut el: impl FnMut(A, B) -> f64) {
    let n = a.len().min(b.len());
    out.clear();
    out.resize(n, 0.0);
    let mut i = 0;
    while i + CHUNK <= n {
        let (ac, bc) = (&a[i..i + CHUNK], &b[i..i + CHUNK]);
        let oc = &mut out[i..i + CHUNK];
        for l in 0..CHUNK {
            oc[l] = el(ac[l], bc[l]);
        }
        i += CHUNK;
    }
    while i < n {
        out[i] = el(a[i], b[i]);
        i += 1;
    }
}

/// Chunked fused score+argmax over two parallel slices.
#[inline(always)]
fn argmax2<A: Copy, B: Copy>(a: &[A], b: &[B], mut el: impl FnMut(A, B) -> f64) -> Option<usize> {
    let n = a.len().min(b.len());
    let mut best: Option<(usize, f64)> = None;
    let mut i = 0;
    while i + CHUNK <= n {
        let (ac, bc) = (&a[i..i + CHUNK], &b[i..i + CHUNK]);
        let mut buf = [0.0f64; CHUNK];
        for l in 0..CHUNK {
            buf[l] = el(ac[l], bc[l]);
        }
        for (l, &v) in buf.iter().enumerate() {
            argmax_step(&mut best, i + l, v);
        }
        i += CHUNK;
    }
    while i < n {
        argmax_step(&mut best, i, el(a[i], b[i]));
        i += 1;
    }
    best.map(|(i, _)| i)
}

// ----- MOSS / CSR (the paper's DFL indices) ---------------------------------

#[inline(always)]
fn moss_el(mean: f64, count: u64, t_f: f64, k_f: f64) -> f64 {
    if count == 0 {
        return f64::INFINITY;
    }
    let count_f = count as f64;
    mean + (log_plus(t_f / (k_f * count_f)) / count_f).sqrt()
}

/// Fills `out` with [`moss_index`](crate::estimator::moss_index) per arm:
/// `out[i] = moss_index(means[i], counts[i], t, k)`, with `t as f64` and the
/// candidate count hoisted out of the sweep.
pub fn moss_scores_into(means: &[f64], counts: &[u64], t: usize, k: usize, out: &mut Vec<f64>) {
    let t_f = t as f64;
    let k_f = k.max(1) as f64;
    fill2(out, means, counts, |mean, count| {
        moss_el(mean, count, t_f, k_f)
    });
}

/// [`moss_scores_into`] over real-valued effective counts (see
/// [`ArmEstimators::effective_counts_into`](crate::estimator::ArmEstimators::effective_counts_into)):
/// `out[i] = moss_index_weighted(means[i], counts[i], t, k)`.
pub fn moss_scores_weighted_into(
    means: &[f64],
    counts: &[f64],
    t: usize,
    k: usize,
    out: &mut Vec<f64>,
) {
    let t_f = t as f64;
    let k_f = k.max(1) as f64;
    fill2(out, means, counts, |mean, count: f64| {
        if count <= 0.0 {
            f64::INFINITY
        } else {
            mean + (log_plus(t_f / (k_f * count)) / count).sqrt()
        }
    });
}

/// Fused MOSS score+argmax: the arm
/// [`argmax_last`](crate::estimator::argmax_last) would select over
/// [`moss_index`](crate::estimator::moss_index) values, without materialising
/// the score vector. This is the whole per-round selection of DFL-SSO and
/// DFL-CSO.
pub fn moss_argmax(means: &[f64], counts: &[u64], t: usize, k: usize) -> Option<usize> {
    let t_f = t as f64;
    let k_f = k.max(1) as f64;
    argmax2(means, counts, |mean, count| moss_el(mean, count, t_f, k_f))
}

/// Fills `out` with [`csr_index`](crate::estimator::csr_index) per arm. The
/// expensive invariants — `t^{2/3}` and the zero-count exploration sentinel,
/// both recomputed per arm by the scalar form — are hoisted to one evaluation
/// per call.
pub fn csr_scores_into(means: &[f64], counts: &[u64], t: usize, k: usize, out: &mut Vec<f64>) {
    let t_pow = (t.max(1) as f64).powf(2.0 / 3.0);
    let k_f = k.max(1) as f64;
    let unobserved = 1.0 + (log_plus(t_pow) + 1.0).sqrt();
    fill2(out, means, counts, |mean, count: u64| {
        if count == 0 {
            unobserved
        } else {
            let count_f = count as f64;
            mean + (log_plus(t_pow / (k_f * count_f)) / count_f).sqrt()
        }
    });
}

/// [`csr_scores_into`] over real-valued effective counts:
/// `out[i] = csr_index_weighted(means[i], counts[i], t, k)`.
pub fn csr_scores_weighted_into(
    means: &[f64],
    counts: &[f64],
    t: usize,
    k: usize,
    out: &mut Vec<f64>,
) {
    let t_pow = (t.max(1) as f64).powf(2.0 / 3.0);
    let k_f = k.max(1) as f64;
    let unobserved = 1.0 + (log_plus(t_pow) + 1.0).sqrt();
    fill2(out, means, counts, |mean, count: f64| {
        if count <= 0.0 {
            unobserved
        } else {
            mean + (log_plus(t_pow / (k_f * count)) / count).sqrt()
        }
    });
}

// ----- DFL-SSR (neighbourhood min/sum sweep) --------------------------------

#[inline(always)]
fn ssr_el(csr: &CsrGraph, counts: &[u64], means: &[f64], arm: usize, k_f: f64, t_f: f64) -> f64 {
    // One packed closed-neighbourhood row: `Ob_i = min_j O_j` and
    // `B̄_i = Σ_j X̄_j`, summed in row order — the exact order (and f64
    // operation sequence) of `DflSsr::side_observation_count` /
    // `side_reward_estimate`.
    let row = csr.closed_neighborhood(arm);
    let mut min_count = u64::MAX;
    let mut sum = 0.0;
    for &j in row {
        min_count = min_count.min(counts[j]);
        sum += means[j];
    }
    if row.is_empty() {
        min_count = 0;
    }
    let normalised = sum / k_f;
    moss_el(normalised, min_count, t_f, k_f)
}

/// Fills `out` with the DFL-SSR index (`moss_index` of the per-arm
/// neighbourhood min-count and mean-sum, normalised by `K`) for every arm.
pub fn ssr_scores_into(
    csr: &CsrGraph,
    counts: &[u64],
    means: &[f64],
    t: usize,
    out: &mut Vec<f64>,
) {
    let k = csr.num_vertices();
    let k_f = k.max(1) as f64;
    let t_f = t as f64;
    out.clear();
    out.resize(k, 0.0);
    for (arm, slot) in out.iter_mut().enumerate() {
        *slot = ssr_el(csr, counts, means, arm, k_f, t_f);
    }
}

/// Fused DFL-SSR score+argmax over the packed closed-neighbourhood rows.
pub fn ssr_argmax(csr: &CsrGraph, counts: &[u64], means: &[f64], t: usize) -> Option<usize> {
    let k = csr.num_vertices();
    let k_f = k.max(1) as f64;
    let t_f = t as f64;
    let mut best: Option<(usize, f64)> = None;
    for arm in 0..k {
        argmax_step(&mut best, arm, ssr_el(csr, counts, means, arm, k_f, t_f));
    }
    best.map(|(arm, _)| arm)
}

// ----- UCB family (baseline indices) ----------------------------------------

/// The UCB1 index `mean + sqrt(2 ln t / count)` (∞ before the first pull) —
/// the scalar reference of [`ucb1_argmax`].
pub fn ucb1_index(mean: f64, count: u64, t: usize) -> f64 {
    if count == 0 {
        return f64::INFINITY;
    }
    let t = t.max(1) as f64;
    mean + (2.0 * t.ln() / count as f64).sqrt()
}

/// Fused UCB1 score+argmax with `2 ln t` hoisted out of the sweep.
pub fn ucb1_argmax(means: &[f64], counts: &[u64], t: usize) -> Option<usize> {
    let two_ln_t = 2.0 * (t.max(1) as f64).ln();
    argmax2(means, counts, |mean, count: u64| {
        if count == 0 {
            f64::INFINITY
        } else {
            mean + (two_ln_t / count as f64).sqrt()
        }
    })
}

/// The UCB-Tuned index (∞ before the first pull): the exploration width is
/// scaled by `min(1/4, V_i)` where `V_i` is the empirical variance estimate
/// `max(sum_sq/n − mean², 0) + sqrt(2 ln t / n)`. Scalar reference of
/// [`ucb_tuned_argmax`].
pub fn ucb_tuned_index(mean: f64, count: u64, sum_sq: f64, t: usize) -> f64 {
    if count == 0 {
        return f64::INFINITY;
    }
    let t = t.max(1) as f64;
    let count_f = count as f64;
    let variance = (sum_sq / count_f - mean * mean).max(0.0);
    let v = variance + (2.0 * t.ln() / count_f).sqrt();
    mean + (t.ln() / count_f * v.min(0.25)).sqrt()
}

/// Fused UCB-Tuned score+argmax over the parallel `(means, counts, sum_sq)`
/// arrays, with `ln t` and `2 ln t` hoisted out of the sweep.
pub fn ucb_tuned_argmax(means: &[f64], counts: &[u64], sum_sq: &[f64], t: usize) -> Option<usize> {
    let n = means.len().min(counts.len()).min(sum_sq.len());
    let ln_t = (t.max(1) as f64).ln();
    let two_ln_t = 2.0 * ln_t;
    let el = |mean: f64, count: u64, sq: f64| {
        if count == 0 {
            return f64::INFINITY;
        }
        let count_f = count as f64;
        let variance = (sq / count_f - mean * mean).max(0.0);
        let v = variance + (two_ln_t / count_f).sqrt();
        mean + (ln_t / count_f * v.min(0.25)).sqrt()
    };
    let mut best: Option<(usize, f64)> = None;
    let mut i = 0;
    while i + CHUNK <= n {
        let mut buf = [0.0f64; CHUNK];
        let (mc, cc, sc) = (
            &means[i..i + CHUNK],
            &counts[i..i + CHUNK],
            &sum_sq[i..i + CHUNK],
        );
        for l in 0..CHUNK {
            buf[l] = el(mc[l], cc[l], sc[l]);
        }
        for (l, &v) in buf.iter().enumerate() {
            argmax_step(&mut best, i + l, v);
        }
        i += CHUNK;
    }
    while i < n {
        argmax_step(&mut best, i, el(means[i], counts[i], sum_sq[i]));
        i += 1;
    }
    best.map(|(i, _)| i)
}

/// The CUCB per-arm index `mean + sqrt(1.5 ln t / count)`, with a large
/// *finite* value before the first play so oracle sums stay finite. Scalar
/// reference of [`cucb_scores_into`].
pub fn cucb_index(mean: f64, count: u64, t: usize) -> f64 {
    if count == 0 {
        return 2.0 + (t.max(1) as f64).ln().sqrt();
    }
    mean + (1.5 * (t.max(1) as f64).ln() / count as f64).sqrt()
}

/// Fills `out` with the CUCB index per arm; `ln t`, `1.5 ln t`, and the
/// unplayed-arm sentinel are hoisted out of the sweep.
pub fn cucb_scores_into(means: &[f64], counts: &[u64], t: usize, out: &mut Vec<f64>) {
    let ln_t = (t.max(1) as f64).ln();
    let unplayed = 2.0 + ln_t.sqrt();
    let bonus = 1.5 * ln_t;
    fill2(out, means, counts, |mean, count: u64| {
        if count == 0 {
            unplayed
        } else {
            mean + (bonus / count as f64).sqrt()
        }
    });
}

/// The LLR per-arm index `mean + sqrt((M + 1) ln t / count)` for maximum
/// strategy size `max_size`, with a large finite value before the first play.
/// Scalar reference of [`llr_scores_into`].
pub fn llr_index(mean: f64, count: u64, max_size: usize, t: usize) -> f64 {
    let m = max_size.max(1) as f64;
    if count == 0 {
        return 2.0 + ((m + 1.0) * (t.max(1) as f64).ln()).sqrt();
    }
    mean + ((m + 1.0) * (t.max(1) as f64).ln() / count as f64).sqrt()
}

/// Fills `out` with the LLR index per arm; `(M + 1) ln t` and the
/// unplayed-arm sentinel are hoisted out of the sweep.
pub fn llr_scores_into(
    means: &[f64],
    counts: &[u64],
    max_size: usize,
    t: usize,
    out: &mut Vec<f64>,
) {
    let m = max_size.max(1) as f64;
    let bonus = (m + 1.0) * (t.max(1) as f64).ln();
    let unplayed = 2.0 + bonus.sqrt();
    fill2(out, means, counts, |mean, count: u64| {
        if count == 0 {
            unplayed
        } else {
            mean + (bonus / count as f64).sqrt()
        }
    });
}

// ----- scalar references (per-element loops over the original functions) ----

/// Scalar reference of [`moss_scores_into`]: a per-arm loop over
/// [`moss_index`](crate::estimator::moss_index). Kept as the definition the
/// chunked kernel is pinned against.
pub fn moss_scores_scalar(means: &[f64], counts: &[u64], t: usize, k: usize, out: &mut Vec<f64>) {
    out.clear();
    out.extend(
        means
            .iter()
            .zip(counts)
            .map(|(&m, &c)| crate::estimator::moss_index(m, c, t, k)),
    );
}

/// Scalar reference of [`moss_scores_weighted_into`].
pub fn moss_scores_weighted_scalar(
    means: &[f64],
    counts: &[f64],
    t: usize,
    k: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.extend(
        means
            .iter()
            .zip(counts)
            .map(|(&m, &c)| moss_index_weighted(m, c, t, k)),
    );
}

/// Scalar reference of [`csr_scores_into`]: a per-arm loop over
/// [`csr_index`](crate::estimator::csr_index).
pub fn csr_scores_scalar(means: &[f64], counts: &[u64], t: usize, k: usize, out: &mut Vec<f64>) {
    out.clear();
    out.extend(
        means
            .iter()
            .zip(counts)
            .map(|(&m, &c)| crate::estimator::csr_index(m, c, t, k)),
    );
}

/// Scalar reference of [`csr_scores_weighted_into`].
pub fn csr_scores_weighted_scalar(
    means: &[f64],
    counts: &[f64],
    t: usize,
    k: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.extend(
        means
            .iter()
            .zip(counts)
            .map(|(&m, &c)| csr_index_weighted(m, c, t, k)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{argmax_last, csr_index, moss_index};

    fn state(n: usize) -> (Vec<f64>, Vec<u64>) {
        let means: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let counts: Vec<u64> = (0..n).map(|i| (i as u64 * 7) % 5).collect();
        (means, counts)
    }

    #[test]
    fn moss_kernel_is_bit_identical_to_the_scalar_reference() {
        for n in [0, 1, 7, 8, 9, 64, 100] {
            let (means, counts) = state(n);
            let (mut fast, mut slow) = (Vec::new(), Vec::new());
            for t in [1, 2, 100, 9999] {
                moss_scores_into(&means, &counts, t, n, &mut fast);
                moss_scores_scalar(&means, &counts, t, n, &mut slow);
                assert_eq!(
                    fast.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    slow.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "n={n} t={t}"
                );
            }
        }
    }

    #[test]
    fn csr_kernel_is_bit_identical_to_the_scalar_reference() {
        for n in [1, 8, 33] {
            let (means, counts) = state(n);
            let (mut fast, mut slow) = (Vec::new(), Vec::new());
            for t in [1, 17, 4242] {
                csr_scores_into(&means, &counts, t, n, &mut fast);
                csr_scores_scalar(&means, &counts, t, n, &mut slow);
                assert_eq!(
                    fast.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    slow.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                );
            }
        }
    }

    #[test]
    fn weighted_kernels_match_their_scalar_references() {
        let means: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        let counts: Vec<f64> = (0..20).map(|i| (i as f64 * 0.6) - 1.0).collect();
        let (mut fast, mut slow) = (Vec::new(), Vec::new());
        moss_scores_weighted_into(&means, &counts, 50, 20, &mut fast);
        moss_scores_weighted_scalar(&means, &counts, 50, 20, &mut slow);
        assert_eq!(fast, slow);
        csr_scores_weighted_into(&means, &counts, 50, 20, &mut fast);
        csr_scores_weighted_scalar(&means, &counts, 50, 20, &mut slow);
        assert_eq!(
            fast.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            slow.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn fused_argmax_matches_score_then_argmax_including_ties() {
        // All-zero counts: every score is +inf, so the *last* arm must win,
        // exactly like `argmax_last` over the scalar scores.
        let means = vec![0.5; 13];
        let counts = vec![0u64; 13];
        assert_eq!(moss_argmax(&means, &counts, 10, 13), Some(12));
        for n in [1, 9, 40] {
            let (means, counts) = state(n);
            for t in [1, 3, 500] {
                let fused = moss_argmax(&means, &counts, t, n);
                let scalar = argmax_last(
                    means
                        .iter()
                        .zip(&counts)
                        .map(|(&m, &c)| moss_index(m, c, t, n)),
                );
                assert_eq!(fused, scalar, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn ucb_kernels_match_their_scalar_indices() {
        for n in [1, 8, 21] {
            let (means, counts) = state(n);
            let sum_sq: Vec<f64> = means.iter().map(|m| m * m * 1.3).collect();
            for t in [1, 64, 1000] {
                assert_eq!(
                    ucb1_argmax(&means, &counts, t),
                    argmax_last(
                        means
                            .iter()
                            .zip(&counts)
                            .map(|(&m, &c)| ucb1_index(m, c, t))
                    ),
                );
                assert_eq!(
                    ucb_tuned_argmax(&means, &counts, &sum_sq, t),
                    argmax_last((0..n).map(|i| ucb_tuned_index(means[i], counts[i], sum_sq[i], t))),
                );
                let mut fast = Vec::new();
                cucb_scores_into(&means, &counts, t, &mut fast);
                for i in 0..n {
                    assert_eq!(
                        fast[i].to_bits(),
                        cucb_index(means[i], counts[i], t).to_bits()
                    );
                }
                llr_scores_into(&means, &counts, 3, t, &mut fast);
                for i in 0..n {
                    assert_eq!(
                        fast[i].to_bits(),
                        llr_index(means[i], counts[i], 3, t).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn csr_kernel_hoists_the_sentinel_without_changing_it() {
        let mut out = Vec::new();
        csr_scores_into(&[0.0, 0.9], &[0, 4], 123, 2, &mut out);
        assert_eq!(out[0].to_bits(), csr_index(0.0, 0, 123, 2).to_bits());
        assert_eq!(out[1].to_bits(), csr_index(0.9, 4, 123, 2).to_bits());
    }

    #[test]
    fn ssr_kernel_handles_empty_graphs() {
        let csr = netband_graph::RelationGraph::empty(0).to_csr();
        assert_eq!(ssr_argmax(&csr, &[], &[], 5), None);
        let mut out = Vec::new();
        ssr_scores_into(&csr, &[], &[], 5, &mut out);
        assert!(out.is_empty());
    }
}
