//! Observability primitives for the netband serving stack.
//!
//! This crate is deliberately `std`-only and dependency-free: it is the
//! lowest layer of the workspace (even `netband-serve` depends on it), so it
//! cannot pull in the engine, the wire codec, or any vendored shim. Four
//! modules:
//!
//! * [`hist`] — the fixed-bucket [`LatencyHistogram`] shared by the serving
//!   metrics and the registry (moved here from `netband-serve` so both layers
//!   use one implementation).
//! * [`registry`] — a [`Registry`] of named counters, gauges, and histograms
//!   with Prometheus-style text exposition ([`Registry::render_text`]) and a
//!   strict parser ([`parse_exposition`]) used by CI to validate scrapes.
//! * [`trace`] — the fixed-capacity [`TraceRing`] of structured serving
//!   events with monotonic sequence numbers; `Copy` events, no allocation on
//!   record.
//! * [`stages`] — per-stage decide timings ([`DecideStage`],
//!   [`StageTimings`], [`StageClock`]) for the route → select → pull →
//!   score → reply pipeline.
//!
//! ## Ownership discipline
//!
//! Nothing here is synchronised. Histograms, rings, and stage timers are
//! plain values meant to be owned by exactly one thread (a shard) and
//! *gathered* through that thread's command loop, exactly like
//! `netband-serve`'s metrics. The [`Registry`] is a cold-path aggregation
//! target: callers build one at scrape time from gathered reports, render it,
//! and throw it away — it never sits on a hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod stages;
pub mod trace;

pub use hist::{LatencyHistogram, LATENCY_BUCKETS};
pub use registry::{parse_exposition, ExpositionError, ExpositionLine, Registry};
pub use stages::{DecideStage, StageClock, StageTimings, DECIDE_STAGES};
pub use trace::{TagStr, TraceEvent, TraceKind, TraceRing};
