//! A cold-path metrics registry with Prometheus-style text exposition.
//!
//! The registry is an *aggregation target*, not a live store: at scrape time
//! a caller gathers reports from the engine (and any transport counters),
//! writes them into a fresh [`Registry`], renders it with
//! [`Registry::render_text`], and discards it. Nothing here is shared or
//! synchronised, and nothing here belongs on a hot path.
//!
//! The module also ships the strict scrape validator [`parse_exposition`]
//! used by CI: every rendered line must be a `# HELP`/`# TYPE` comment or a
//! `name{labels} value` sample, and the parser rejects anything else.

use std::fmt::Write as _;

use crate::hist::{LatencyHistogram, LATENCY_BUCKETS};

/// The exposition type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample's rendered value.
#[derive(Debug, Clone)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(LatencyHistogram),
}

#[derive(Debug, Clone)]
struct Sample {
    labels: Vec<(String, String)>,
    value: Value,
}

#[derive(Debug, Clone)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<Sample>,
}

/// An ordered collection of metric families rendered in the Prometheus text
/// format. Families appear in first-touch order, samples in insertion order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Vec<Family>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Records a counter sample (a monotonic total gathered elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if `name` was already registered with a different kind or an
    /// invalid metric/label name is used — both are programmer errors in the
    /// scrape assembly code, not runtime conditions.
    pub fn set_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push(
            name,
            help,
            MetricKind::Counter,
            labels,
            Value::Counter(value),
        );
    }

    /// Records a gauge sample (a point-in-time value).
    ///
    /// # Panics
    ///
    /// Panics on kind mismatch or invalid names (see
    /// [`Registry::set_counter`]).
    pub fn set_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, help, MetricKind::Gauge, labels, Value::Gauge(value));
    }

    /// Records a latency histogram, rendered as cumulative `_bucket` lines
    /// (with `le` bounds in **seconds**, final bucket `+Inf`), a `_sum` in
    /// seconds, and a `_count`.
    ///
    /// # Panics
    ///
    /// Panics on kind mismatch or invalid names (see
    /// [`Registry::set_counter`]).
    pub fn set_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &LatencyHistogram,
    ) {
        self.push(
            name,
            help,
            MetricKind::Histogram,
            labels,
            Value::Histogram(hist.clone()),
        );
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        value: Value,
    ) {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let sample = Sample { labels, value };
        match self.families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                assert_eq!(
                    family.kind,
                    kind,
                    "metric {name} registered as both {} and {}",
                    family.kind.as_str(),
                    kind.as_str()
                );
                family.samples.push(sample);
            }
            None => self.families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                samples: vec![sample],
            }),
        }
    }

    /// Renders the whole registry in the Prometheus text exposition format.
    /// The output round-trips through [`parse_exposition`].
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for sample in &family.samples {
                match &sample.value {
                    Value::Counter(v) => {
                        write_sample_name(&mut out, &family.name, &sample.labels, None);
                        let _ = writeln!(out, " {v}");
                    }
                    Value::Gauge(v) => {
                        write_sample_name(&mut out, &family.name, &sample.labels, None);
                        let _ = writeln!(out, " {}", format_f64(*v));
                    }
                    Value::Histogram(hist) => {
                        render_histogram(&mut out, &family.name, &sample.labels, hist);
                    }
                }
            }
        }
        out
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    hist: &LatencyHistogram,
) {
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for (i, &n) in hist.bucket_counts().iter().enumerate() {
        cumulative += n;
        // The last internal bucket is open-ended: it IS the +Inf bucket, so
        // only the +Inf line is emitted for it.
        if i == LATENCY_BUCKETS - 1 {
            break;
        }
        let le = LatencyHistogram::bucket_upper_bound(i) as f64 / 1e9;
        write_sample_name(out, &bucket_name, labels, Some(("le", &format_f64(le))));
        let _ = writeln!(out, " {cumulative}");
    }
    write_sample_name(out, &bucket_name, labels, Some(("le", "+Inf")));
    let _ = writeln!(out, " {}", hist.count());
    write_sample_name(out, &format!("{name}_sum"), labels, None);
    let _ = writeln!(out, " {}", format_f64(hist.total_nanos() as f64 / 1e9));
    write_sample_name(out, &format!("{name}_count"), labels, None);
    let _ = writeln!(out, " {}", hist.count());
}

fn write_sample_name(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
) {
    out.push_str(name);
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

/// Formats an `f64` so the exposition stays parseable: finite values use
/// Rust's shortest round-trip notation, infinities the Prometheus spellings.
fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One validated line of a text exposition.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpositionLine {
    /// A `# HELP name text` comment.
    Help {
        /// Metric family name.
        name: String,
    },
    /// A `# TYPE name kind` comment.
    Type {
        /// Metric family name.
        name: String,
        /// One of `counter`, `gauge`, `histogram`.
        kind: String,
    },
    /// A `name{labels} value` sample.
    Sample {
        /// Sample name (including any `_bucket`/`_sum`/`_count` suffix).
        name: String,
        /// Label pairs in document order.
        labels: Vec<(String, String)>,
        /// The parsed value.
        value: f64,
    },
}

/// A scrape-validation failure: the offending 1-based line and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpositionError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ExpositionError {}

/// Strictly parses a text exposition: every non-empty line must be a
/// `# HELP`/`# TYPE` comment or a `name{labels} value` sample. Returns the
/// structured lines (so tests can assert on specific samples) or the first
/// offending line.
pub fn parse_exposition(text: &str) -> Result<Vec<ExpositionLine>, ExpositionError> {
    let mut lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.is_empty() {
            continue;
        }
        let err = |message: String| ExpositionError { line, message };
        if let Some(comment) = raw.strip_prefix("# ") {
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(err(format!("invalid HELP metric name {name:?}")));
                }
                lines.push(ExpositionLine::Help {
                    name: name.to_string(),
                });
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(err(format!("invalid TYPE metric name {name:?}")));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(err(format!("unknown metric type {kind:?}")));
                }
                if parts.next().is_some() {
                    return Err(err("trailing tokens after TYPE comment".to_string()));
                }
                lines.push(ExpositionLine::Type {
                    name: name.to_string(),
                    kind: kind.to_string(),
                });
            } else {
                return Err(err(format!("comment is neither HELP nor TYPE: {raw:?}")));
            }
            continue;
        }
        if raw.starts_with('#') {
            return Err(err(format!("malformed comment line {raw:?}")));
        }
        lines.push(parse_sample(raw).map_err(err)?);
    }
    Ok(lines)
}

fn parse_sample(raw: &str) -> Result<ExpositionLine, String> {
    let (name_part, labels, rest) = match raw.find('{') {
        Some(open) => {
            let close = raw
                .rfind('}')
                .ok_or_else(|| "unterminated label block".to_string())?;
            if close < open {
                return Err("mismatched label braces".to_string());
            }
            let labels = parse_labels(&raw[open + 1..close])?;
            (&raw[..open], labels, &raw[close + 1..])
        }
        None => {
            let space = raw
                .find(' ')
                .ok_or_else(|| "sample has no value".to_string())?;
            (&raw[..space], Vec::new(), &raw[space..])
        }
    };
    if !valid_metric_name(name_part) {
        return Err(format!("invalid sample name {name_part:?}"));
    }
    let value_text = rest
        .strip_prefix(' ')
        .ok_or_else(|| "expected single space before value".to_string())?;
    if value_text.is_empty() || value_text.contains(' ') {
        return Err(format!("malformed value field {value_text:?}"));
    }
    let value = value_text
        .parse::<f64>()
        .map_err(|_| format!("unparseable value {value_text:?}"))?;
    Ok(ExpositionLine::Sample {
        name: name_part.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if !valid_label_name(&key) {
            return Err(format!("invalid label name {key:?}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key} value is not quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {key}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated value of label {key}")),
            }
        }
        labels.push((key, value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => continue,
            Some(c) => return Err(format!("expected ',' between labels, found {c:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn render_round_trips_through_parser() {
        let mut reg = Registry::new();
        reg.set_counter("requests_total", "Requests served", &[], 7);
        reg.set_counter(
            "shard_commands_total",
            "Commands per shard",
            &[("shard", "0")],
            3,
        );
        reg.set_gauge("queue_depth", "Current depth", &[("shard", "0")], 1.5);
        let mut hist = LatencyHistogram::new();
        hist.record(Duration::from_nanos(200));
        hist.record(Duration::from_micros(3));
        reg.set_histogram("decide_seconds", "Decide latency", &[], &hist);
        let text = reg.render_text();
        let lines = parse_exposition(&text).expect("rendered text must parse");
        assert!(lines
            .iter()
            .any(|l| matches!(l, ExpositionLine::Type { name, kind }
                if name == "decide_seconds" && kind == "histogram")));
        let count = lines.iter().find_map(|l| match l {
            ExpositionLine::Sample { name, value, .. } if name == "decide_seconds_count" => {
                Some(*value)
            }
            _ => None,
        });
        assert_eq!(count, Some(2.0));
        // The +Inf bucket equals the count.
        let inf = lines
            .iter()
            .find_map(|l| match l {
                ExpositionLine::Sample {
                    name,
                    labels,
                    value,
                } if name == "decide_seconds_bucket"
                    && labels.iter().any(|(k, v)| k == "le" && v == "+Inf") =>
                {
                    Some(*value)
                }
                _ => None,
            })
            .expect("+Inf bucket rendered");
        assert_eq!(inf, 2.0);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut hist = LatencyHistogram::new();
        hist.record(Duration::from_nanos(100)); // bucket 0
        hist.record(Duration::from_nanos(400)); // bucket 1
        let mut reg = Registry::new();
        reg.set_histogram("h", "test", &[], &hist);
        let lines = parse_exposition(&reg.render_text()).unwrap();
        let buckets: Vec<f64> = lines
            .iter()
            .filter_map(|l| match l {
                ExpositionLine::Sample { name, value, .. } if name == "h_bucket" => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(buckets.len(), LATENCY_BUCKETS);
        assert_eq!(buckets[0], 1.0);
        assert_eq!(buckets[1], 2.0);
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
        assert_eq!(*buckets.last().unwrap(), 2.0);
    }

    #[test]
    fn label_escaping_round_trips() {
        let mut reg = Registry::new();
        reg.set_gauge(
            "g",
            "gauge with tricky label",
            &[("tenant", "a\"b\\c\nd")],
            1.0,
        );
        let lines = parse_exposition(&reg.render_text()).unwrap();
        let labels = lines
            .iter()
            .find_map(|l| match l {
                ExpositionLine::Sample { labels, .. } => Some(labels.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(labels, vec![("tenant".into(), "a\"b\\c\nd".into())]);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_exposition("not a metric line").is_err());
        assert!(parse_exposition("# FOO bar").is_err());
        assert!(parse_exposition("name{unterminated=\"x} 1").is_err());
        assert!(parse_exposition("name 1 2").is_err());
        assert!(parse_exposition("name notanumber").is_err());
        assert!(parse_exposition("1badname 2").is_err());
    }

    #[test]
    fn families_keep_insertion_order_and_merge_samples() {
        let mut reg = Registry::new();
        reg.set_counter("b_total", "b", &[("shard", "0")], 1);
        reg.set_counter("a_total", "a", &[], 2);
        reg.set_counter("b_total", "b", &[("shard", "1")], 3);
        let text = reg.render_text();
        let b_pos = text.find("# TYPE b_total").unwrap();
        let a_pos = text.find("# TYPE a_total").unwrap();
        assert!(b_pos < a_pos, "families must render in first-touch order");
        // Only one HELP/TYPE pair per family.
        assert_eq!(text.matches("# TYPE b_total").count(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_mismatch_panics() {
        let mut reg = Registry::new();
        reg.set_counter("m", "m", &[], 1);
        reg.set_gauge("m", "m", &[], 1.0);
    }
}
