//! Per-stage decide timings: route → select → pull → score → reply.
//!
//! ROADMAP item 4 (multicore scaling) needs to know *where* a decide spends
//! its time before any scheduling change can be judged. These types give the
//! serving layer a feature-flag-free way to record that split: a
//! [`StageClock`] laps `Instant::now()` between stage boundaries, and a
//! [`StageTimings`] holds one [`LatencyHistogram`] per stage.
//!
//! Reading a monotonic clock a handful of extra times per decide is cheap
//! but not free, so the serving layer samples: most decides record only the
//! single end-to-end latency they always did, and every N-th decide also
//! records its stage split. The histograms therefore answer "where does the
//! time go" (shape), not "how many decides ran" (use the decide counters for
//! that).

use std::time::Instant;

use crate::hist::LatencyHistogram;

/// The stages of one decide, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecideStage {
    /// Tenant lookup in the shard's table.
    Route,
    /// Policy arm/strategy selection (includes any flush-before-decide).
    Select,
    /// Environment pull: reward realisation for the selected play.
    Pull,
    /// Scoring: reward/regret accounting and trace recording.
    Score,
    /// Reply construction (filling the decide reply buffers).
    Reply,
}

/// All stages in pipeline order.
pub const DECIDE_STAGES: [DecideStage; 5] = [
    DecideStage::Route,
    DecideStage::Select,
    DecideStage::Pull,
    DecideStage::Score,
    DecideStage::Reply,
];

impl DecideStage {
    /// Stable, lowercase stage name (used as the `stage` label value).
    pub fn name(&self) -> &'static str {
        match self {
            DecideStage::Route => "route",
            DecideStage::Select => "select",
            DecideStage::Pull => "pull",
            DecideStage::Score => "score",
            DecideStage::Reply => "reply",
        }
    }

    fn index(self) -> usize {
        match self {
            DecideStage::Route => 0,
            DecideStage::Select => 1,
            DecideStage::Pull => 2,
            DecideStage::Score => 3,
            DecideStage::Reply => 4,
        }
    }
}

/// One latency histogram per decide stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTimings {
    histograms: [LatencyHistogram; 5],
}

impl Default for StageTimings {
    fn default() -> Self {
        StageTimings {
            histograms: std::array::from_fn(|_| LatencyHistogram::new()),
        }
    }
}

impl StageTimings {
    /// Empty timings.
    pub fn new() -> Self {
        StageTimings::default()
    }

    /// The histogram of one stage.
    pub fn get(&self, stage: DecideStage) -> &LatencyHistogram {
        &self.histograms[stage.index()]
    }

    /// Records one observation for `stage`.
    pub fn record(&mut self, stage: DecideStage, latency: std::time::Duration) {
        self.histograms[stage.index()].record(latency);
    }

    /// Folds another set of timings into this one.
    pub fn merge(&mut self, other: &StageTimings) {
        for (mine, theirs) in self.histograms.iter_mut().zip(other.histograms.iter()) {
            mine.merge(theirs);
        }
    }

    /// Total observations across all stages.
    pub fn total_count(&self) -> u64 {
        self.histograms.iter().map(|h| h.count()).sum()
    }
}

/// Laps a monotonic clock across stage boundaries, recording each lap into a
/// [`StageTimings`]. Create it when a sampled decide starts, call
/// [`StageClock::lap`] at the end of each stage.
#[derive(Debug)]
pub struct StageClock {
    last: Instant,
}

impl StageClock {
    /// Starts the clock (the first lap measures from here).
    pub fn start() -> Self {
        StageClock {
            last: Instant::now(),
        }
    }

    /// Ends `stage`: records the time since the previous lap (or since
    /// [`StageClock::start`]) and restarts the lap timer.
    pub fn lap(&mut self, stage: DecideStage, into: &mut StageTimings) {
        let now = Instant::now();
        into.record(stage, now.duration_since(self.last));
        self.last = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stage_names_are_stable_and_distinct() {
        let names: Vec<&str> = DECIDE_STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["route", "select", "pull", "score", "reply"]);
    }

    #[test]
    fn record_and_merge_accumulate_per_stage() {
        let mut a = StageTimings::new();
        a.record(DecideStage::Route, Duration::from_nanos(100));
        a.record(DecideStage::Select, Duration::from_nanos(200));
        let mut b = StageTimings::new();
        b.record(DecideStage::Select, Duration::from_nanos(300));
        a.merge(&b);
        assert_eq!(a.get(DecideStage::Route).count(), 1);
        assert_eq!(a.get(DecideStage::Select).count(), 2);
        assert_eq!(a.get(DecideStage::Pull).count(), 0);
        assert_eq!(a.total_count(), 3);
    }

    #[test]
    fn clock_laps_cover_every_stage() {
        let mut timings = StageTimings::new();
        let mut clock = StageClock::start();
        for stage in DECIDE_STAGES {
            clock.lap(stage, &mut timings);
        }
        for stage in DECIDE_STAGES {
            assert_eq!(timings.get(stage).count(), 1, "{}", stage.name());
        }
    }
}
