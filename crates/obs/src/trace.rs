//! A fixed-capacity ring of structured serving events.
//!
//! Each shard owns one [`TraceRing`] (same ownership discipline as the
//! serving metrics: thread-local, gathered through the command loop).
//! Recording is `Copy`-only — the tenant id is truncated into an inline
//! [`TagStr`], so the hot path never allocates — and the ring overwrites its
//! oldest events when full, counting what it dropped. Sequence numbers are
//! monotonic per ring, so a drained history shows both the order of events
//! and any gaps.

use std::fmt;

/// Maximum bytes of a [`TagStr`] (longer tags are truncated on a UTF-8
/// boundary).
pub const TAG_BYTES: usize = 32;

/// A fixed-capacity, inline, `Copy` string used for tenant ids in trace
/// events. Truncation keeps the longest UTF-8-valid prefix that fits.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct TagStr {
    bytes: [u8; TAG_BYTES],
    len: u8,
}

impl TagStr {
    /// An empty tag.
    pub const fn empty() -> Self {
        TagStr {
            bytes: [0; TAG_BYTES],
            len: 0,
        }
    }

    /// Builds a tag from `s`, truncating to the longest UTF-8-valid prefix
    /// that fits in [`TAG_BYTES`] bytes. Never allocates.
    pub fn truncate_from(s: &str) -> Self {
        let mut end = s.len().min(TAG_BYTES);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut bytes = [0; TAG_BYTES];
        bytes[..end].copy_from_slice(&s.as_bytes()[..end]);
        TagStr {
            bytes,
            len: end as u8,
        }
    }

    /// The tag's text.
    pub fn as_str(&self) -> &str {
        // The constructor only ever copies a prefix ending on a char
        // boundary, so this cannot fail.
        std::str::from_utf8(&self.bytes[..self.len as usize]).unwrap_or("")
    }
}

impl fmt::Debug for TagStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for TagStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened. Payload-carrying variants stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A tenant was created from a spec.
    TenantRegistered,
    /// A tenant was restored from a snapshot.
    TenantRestored,
    /// A snapshot of a live tenant was taken (tenant keeps running).
    SnapshotTaken,
    /// A tenant was evicted (final snapshot taken, tenant removed).
    TenantEvicted,
    /// A pending-feedback flush applied `events` events to the policy.
    FlushApplied {
        /// Events applied by this flush.
        events: u64,
    },
    /// A feedback event was rejected (unknown tenant or invalid round).
    FeedbackRejected,
    /// A command was rejected at the engine because the shard's queue was
    /// full.
    ShardOverloaded {
        /// Index of the overloaded shard.
        shard: u32,
    },
    /// A mutation was appended to the shard's write-ahead log (durable
    /// engines only).
    WalAppended {
        /// WAL size in bytes after the append.
        bytes: u64,
    },
    /// The shard's WAL was compacted into a fresh epoch snapshot.
    SnapshotCompacted {
        /// Tenants captured by the snapshot (resident plus disk tier).
        tenants: u32,
    },
    /// An evicted tenant was read back from the disk tier into RAM.
    TenantRehydrated,
}

impl TraceKind {
    /// Stable, lowercase event name (used in docs, tests, and rendering).
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::TenantRegistered => "tenant_registered",
            TraceKind::TenantRestored => "tenant_restored",
            TraceKind::SnapshotTaken => "snapshot_taken",
            TraceKind::TenantEvicted => "tenant_evicted",
            TraceKind::FlushApplied { .. } => "flush_applied",
            TraceKind::FeedbackRejected => "feedback_rejected",
            TraceKind::ShardOverloaded { .. } => "shard_overloaded",
            TraceKind::WalAppended { .. } => "wal_appended",
            TraceKind::SnapshotCompacted { .. } => "snapshot_compacted",
            TraceKind::TenantRehydrated => "tenant_rehydrated",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic per-ring sequence number, starting at 0.
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
    /// The tenant involved (empty for events without one).
    pub tenant: TagStr,
}

/// A fixed-capacity ring of [`TraceEvent`]s. When full, recording overwrites
/// the oldest event and bumps [`TraceRing::dropped`].
#[derive(Debug, Clone)]
pub struct TraceRing {
    slots: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest live event.
    head: usize,
    len: usize,
    next_seq: u64,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (clamped to at least 1). The
    /// backing store is allocated (and filled with placeholder slots) up
    /// front; recording never allocates.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let placeholder = TraceEvent {
            seq: 0,
            kind: TraceKind::TenantRegistered,
            tenant: TagStr::empty(),
        };
        TraceRing {
            slots: vec![placeholder; capacity],
            capacity,
            head: 0,
            len: 0,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Capacity the ring was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live (undrained, unoverwritten) events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no live events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events overwritten before ever being drained.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (equals the next sequence number).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Records one event. Constant-time, allocation-free (the backing store
    /// was sized at construction); overwrites the oldest event when full.
    pub fn record(&mut self, kind: TraceKind, tenant: &str) {
        let event = TraceEvent {
            seq: self.next_seq,
            kind,
            tenant: TagStr::truncate_from(tenant),
        };
        self.next_seq += 1;
        let slot = (self.head + self.len) % self.capacity;
        self.slots[slot] = event;
        if self.len == self.capacity {
            // Full: the write just clobbered the oldest event.
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        } else {
            self.len += 1;
        }
    }

    /// Moves all live events into `out` (oldest first) and empties the ring.
    /// Sequence numbers keep counting across drains.
    pub fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        out.reserve(self.len);
        for i in 0..self.len {
            out.push(self.slots[(self.head + i) % self.capacity]);
        }
        self.head = 0;
        self.len = 0;
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_truncates_on_char_boundary() {
        assert_eq!(TagStr::truncate_from("abc").as_str(), "abc");
        let long = "x".repeat(40);
        assert_eq!(TagStr::truncate_from(&long).as_str().len(), TAG_BYTES);
        // 31 ASCII bytes then a 2-byte char straddling the 32-byte limit:
        // the multibyte char must be dropped whole.
        let tricky = format!("{}é", "a".repeat(31));
        assert_eq!(TagStr::truncate_from(&tricky).as_str(), "a".repeat(31));
        assert_eq!(TagStr::empty().as_str(), "");
    }

    #[test]
    fn ring_records_in_order_with_monotonic_seq() {
        let mut ring = TraceRing::new(8);
        ring.record(TraceKind::TenantRegistered, "t1");
        ring.record(TraceKind::FlushApplied { events: 3 }, "t1");
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].seq, 0);
        assert_eq!(out[0].kind, TraceKind::TenantRegistered);
        assert_eq!(out[1].seq, 1);
        assert_eq!(out[1].tenant.as_str(), "t1");
        assert!(ring.is_empty());
        // Sequence numbers continue across drains.
        ring.record(TraceKind::FeedbackRejected, "t2");
        out.clear();
        ring.drain_into(&mut out);
        assert_eq!(out[0].seq, 2);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let mut ring = TraceRing::new(3);
        for i in 0..5 {
            ring.record(TraceKind::FlushApplied { events: i }, "t");
        }
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.recorded(), 5);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        let seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn drain_after_partial_refill_keeps_order() {
        let mut ring = TraceRing::new(2);
        ring.record(TraceKind::TenantRegistered, "a");
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        ring.record(TraceKind::SnapshotTaken, "a");
        ring.record(TraceKind::TenantEvicted, "a");
        ring.record(TraceKind::TenantRegistered, "b");
        out.clear();
        ring.drain_into(&mut out);
        let kinds: Vec<&str> = out.iter().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, vec!["tenant_evicted", "tenant_registered"]);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(TraceKind::FeedbackRejected, "t");
        ring.record(TraceKind::FeedbackRejected, "t");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }
}
