//! The fixed-bucket latency histogram shared by the serving metrics and the
//! registry.
//!
//! Moved here from `netband-serve` (which re-exports it, so existing imports
//! keep working): the registry's text exposition needs bucket-level access,
//! and the serve crate must not depend on the registry.

use std::fmt;
use std::time::Duration;

/// Number of histogram buckets; see [`LatencyHistogram::bucket_upper_bound`].
pub const LATENCY_BUCKETS: usize = 22;

/// Base (smallest) bucket upper bound in nanoseconds.
const BASE_NANOS: u64 = 250;

/// A fixed-bucket latency histogram: bucket `i` counts durations at most
/// `250ns · 2^i`, with the last bucket open-ended (everything above ~0.26 s
/// lands there, however large). Recording is a division, a leading-zeros
/// computation and one increment — no allocation, no loop, suitable for the
/// shard hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    total_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            total_nanos: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Upper bound (inclusive) of bucket `i`, in nanoseconds.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        BASE_NANOS << i.min(LATENCY_BUCKETS - 1)
    }

    /// Smallest bucket whose upper bound holds `nanos` (the last, open-ended
    /// bucket for anything larger): the number of doublings of `BASE_NANOS`
    /// needed to reach `nanos`, computed from the leading zeros of the
    /// ceiling quotient.
    fn bucket_for(nanos: u64) -> usize {
        let quotient = nanos.div_ceil(BASE_NANOS);
        if quotient <= 1 {
            return 0;
        }
        let doublings = (u64::BITS - (quotient - 1).leading_zeros()) as usize;
        doublings.min(LATENCY_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_for(nanos)] += 1;
        self.count += 1;
        self.total_nanos = self.total_nanos.saturating_add(nanos);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded latencies in nanoseconds (saturating).
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos
    }

    /// The per-bucket observation counts (not cumulative), indexed by bucket.
    pub fn bucket_counts(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Mean recorded latency.
    pub fn mean(&self) -> Duration {
        self.total_nanos
            .checked_div(self.count)
            .map(Duration::from_nanos)
            .unwrap_or(Duration::ZERO)
    }

    /// Index of the bucket containing quantile `q ∈ [0, 1]`, or `None` when
    /// the histogram is empty.
    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(i);
            }
        }
        Some(LATENCY_BUCKETS - 1)
    }

    /// Bound of the bucket containing quantile `q ∈ [0, 1]`, and whether it
    /// really is an upper bound: `(bound, true)` for the finite buckets (the
    /// quantile is at most `bound`), `(bound, false)` when the quantile falls
    /// in the last, open-ended bucket — observations there are clamped, so
    /// `bound` is only a *lower* bound on the true latency.
    pub fn quantile_bound(&self, q: f64) -> (Duration, bool) {
        let bucket = self.quantile_bucket(q).unwrap_or(0);
        (
            Duration::from_nanos(Self::bucket_upper_bound(bucket)),
            bucket < LATENCY_BUCKETS - 1,
        )
    }

    /// Upper bound of the bucket containing quantile `q ∈ [0, 1]` — a
    /// conservative estimate of e.g. the p99 latency for quantiles landing in
    /// the finite buckets. When the quantile falls in the last, open-ended
    /// bucket the returned value understates the true latency (use
    /// [`LatencyHistogram::quantile_bound`] to detect that case).
    pub fn quantile_upper_bound(&self, q: f64) -> Duration {
        self.quantile_bound(q).0
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Quantiles in the open-ended overflow bucket render as `>` so the
        // clamped bound is never presented as an upper bound it isn't.
        let (p50, p50_exact) = self.quantile_bound(0.5);
        let (p99, p99_exact) = self.quantile_bound(0.99);
        write!(
            f,
            "n={} mean={:?} p50{}{:?} p99{}{:?}",
            self.count,
            self.mean(),
            if p50_exact { "≤" } else { ">" },
            p50,
            if p99_exact { "≤" } else { ">" },
            p99,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_double() {
        assert_eq!(LatencyHistogram::bucket_upper_bound(0), 250);
        assert_eq!(LatencyHistogram::bucket_upper_bound(1), 500);
        assert_eq!(LatencyHistogram::bucket_upper_bound(2), 1_000);
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_nanos(200)); // bucket 0
        }
        h.record(Duration::from_millis(1)); // far bucket
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_upper_bound(0.5), Duration::from_nanos(250));
        assert!(h.quantile_upper_bound(1.0) >= Duration::from_millis(1));
        assert!(h.mean() >= Duration::from_nanos(200));
        let rendered = h.to_string();
        assert!(rendered.contains("n=100"), "{rendered}");
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_nanos(100));
        b.record(Duration::from_micros(10));
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn histogram_clamps_huge_latencies_to_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_secs(3600));
        assert_eq!(h.count(), 1);
        // The overflow bucket's bound is reported, flagged as NOT an upper
        // bound, and rendered with `>` instead of `≤`.
        let (bound, exact) = h.quantile_bound(1.0);
        assert_eq!(
            bound,
            Duration::from_nanos(LatencyHistogram::bucket_upper_bound(LATENCY_BUCKETS - 1))
        );
        assert!(!exact);
        assert_eq!(h.quantile_upper_bound(1.0), bound);
        let rendered = h.to_string();
        assert!(rendered.contains("p99>"), "{rendered}");
    }

    /// The constant-time bucketing agrees with the bucket bounds on every
    /// boundary: a bound itself stays in its bucket, one nanosecond more
    /// spills into the next.
    #[test]
    fn bucket_for_matches_bounds_at_every_boundary() {
        assert_eq!(LatencyHistogram::bucket_for(0), 0);
        assert_eq!(LatencyHistogram::bucket_for(1), 0);
        for i in 0..LATENCY_BUCKETS - 1 {
            let bound = LatencyHistogram::bucket_upper_bound(i);
            assert_eq!(LatencyHistogram::bucket_for(bound), i, "at bound {bound}");
            assert_eq!(
                LatencyHistogram::bucket_for(bound + 1),
                i + 1,
                "just past bound {bound}"
            );
        }
        assert_eq!(LatencyHistogram::bucket_for(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn bucket_accessors_expose_raw_counts() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(400));
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[1], 1);
        assert_eq!(h.total_nanos(), 500);
    }
}
