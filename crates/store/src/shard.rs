//! Per-shard durable state: one WAL + one snapshot per epoch, plus the disk
//! eviction tier.
//!
//! # Directory layout
//!
//! ```text
//! <data-dir>/shard-<i>/
//!   snapshot-<E>.json   compacted ShardSnapshot for epoch E (absent at genesis)
//!   wal-<E>.log         framed WalRecords appended since that snapshot
//!   evict-<id>-<h>.json one StoredTenantSnapshot per RAM-evicted tenant
//! ```
//!
//! # Epoch rotation (crash-safe compaction)
//!
//! Compaction captures every tenant — resident ones passed by the caller,
//! evicted ones read back from their evict files — into epoch `E+1`:
//!
//! 1. write `snapshot-<E+1>.tmp`, fsync it;
//! 2. rename to `snapshot-<E+1>.json`, fsync the directory — **this rename is
//!    the commit point**;
//! 3. create the empty `wal-<E+1>.log` and switch the writer to it;
//! 4. delete epoch `E`'s files (best-effort cleanup; stale epochs are also
//!    swept at open).
//!
//! A crash anywhere in the sequence leaves at least one complete epoch on
//! disk: before step 2 the old pair is untouched (the `.tmp` is swept at
//! open); after it, recovery picks `E+1` — step 3's missing WAL is simply
//! recreated empty.
//!
//! # The eviction tier is a cache, not a log
//!
//! Evict files exist so a live engine can drop an idle tenant from RAM and
//! read it back later without replaying history. They are **ignored by
//! recovery**: eviction and rehydration are not WAL-logged, and the epoch
//! snapshot plus WAL replay already reconstruct every tenant — resident or
//! not — so consulting evict files there would double-apply the mutations
//! the WAL tail also carries. Open deletes them; the serving layer re-evicts
//! over-cap tenants afresh. The invariant while running: an evict file
//! exists **iff** its tenant is out of RAM, and (because evicted tenants
//! receive no mutations — any command rehydrates first) its content is the
//! tenant's current state, which is also why compaction may embed it
//! verbatim.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use netband_spec::{ShardSnapshot, StoredTenantSnapshot, WalRecord, STORE_VERSION};

use crate::wal::{Wal, WalReplay};
use crate::{StoreConfig, StoreError, StoreMetrics};

fn io_err(op: &'static str, path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// Fsyncs a directory so a just-created/renamed/removed entry survives a
/// crash of the machine, not just of the process.
fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("sync directory", dir, e))
}

/// FNV-1a 64-bit hash — the same function the engine uses for tenant→shard
/// routing, reused here to give evict files collision-resistant names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// File name of a tenant's evict file: a sanitized id prefix for humans, a
/// 16-hex FNV-1a of the full id for uniqueness.
fn evict_file_name(id: &str) -> String {
    let mut prefix: String = id
        .chars()
        .take(40)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if prefix.is_empty() {
        prefix.push('_');
    }
    format!("evict-{prefix}-{:016x}.json", fnv1a(id.as_bytes()))
}

/// Parses `<stem>-<epoch>.<ext>` file names, e.g. `wal-3.log`.
fn parse_epoch(name: &str, stem: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(stem)?
        .strip_prefix('-')?
        .strip_suffix(ext)?
        .strip_suffix('.')?
        .parse()
        .ok()
}

/// What [`ShardStore::open`] reconstructed from disk.
#[derive(Debug)]
pub struct ShardRecovery {
    /// Tenants of the recovered epoch snapshot (empty at genesis), in the
    /// snapshot's stored order.
    pub tenants: Vec<StoredTenantSnapshot>,
    /// WAL records appended after that snapshot, to replay in order on top.
    pub records: Vec<WalRecord>,
    /// Bytes of torn WAL tail discarded (0 for a clean shutdown).
    pub truncated_bytes: u64,
}

impl ShardRecovery {
    /// `true` when the shard directory held no prior state.
    pub fn is_genesis(&self) -> bool {
        self.tenants.is_empty() && self.records.is_empty()
    }
}

/// One shard's durable store: the current epoch's WAL writer plus the
/// snapshot/eviction files around it.
#[derive(Debug)]
pub struct ShardStore {
    dir: PathBuf,
    epoch: u64,
    wal: Wal,
    sync_every: usize,
    compact_every: u64,
    /// Records appended to the current epoch's WAL (drives compaction).
    records_this_epoch: u64,
    metrics: StoreMetrics,
}

impl ShardStore {
    /// Opens (creating if absent) shard `shard`'s store under `config.dir`,
    /// recovering whatever the last run left behind: the newest committed
    /// epoch's snapshot, the replayable WAL tail after it, minus any torn
    /// frame. Stale epochs, `.tmp` leftovers, and evict files are swept.
    pub fn open(
        config: &StoreConfig,
        shard: usize,
    ) -> Result<(ShardStore, ShardRecovery), StoreError> {
        assert!(config.sync_every >= 1, "sync_every must be at least 1");
        assert!(
            config.compact_every >= 1,
            "compact_every must be at least 1"
        );
        let dir = config.dir.join(format!("shard-{shard}"));
        fs::create_dir_all(&dir).map_err(|e| io_err("create shard directory", &dir, e))?;

        // Inventory the directory: epochs seen, plus everything to sweep.
        let mut snapshot_epochs = Vec::new();
        let mut wal_epochs = Vec::new();
        let mut sweep = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("list shard directory", &dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list shard directory", &dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue;
            };
            if let Some(epoch) = parse_epoch(name, "snapshot", "json") {
                snapshot_epochs.push(epoch);
            } else if let Some(epoch) = parse_epoch(name, "wal", "log") {
                wal_epochs.push(epoch);
            } else if name.ends_with(".tmp") || name.starts_with("evict-") {
                sweep.push(entry.path());
            }
        }
        let epoch = snapshot_epochs
            .iter()
            .chain(wal_epochs.iter())
            .copied()
            .max()
            .unwrap_or(0);

        // Load the committed snapshot, if this epoch has one.
        let mut metrics = StoreMetrics::default();
        let snapshot_path = dir.join(format!("snapshot-{epoch}.json"));
        let tenants = if snapshot_epochs.contains(&epoch) {
            let text = fs::read_to_string(&snapshot_path)
                .map_err(|e| io_err("read snapshot", &snapshot_path, e))?;
            let snapshot =
                ShardSnapshot::from_json_text(&text).map_err(|source| StoreError::Codec {
                    path: snapshot_path.clone(),
                    source,
                })?;
            if snapshot.epoch != epoch {
                return Err(StoreError::Corrupt {
                    path: snapshot_path.clone(),
                    offset: 0,
                    message: format!(
                        "snapshot file for epoch {epoch} declares epoch {}",
                        snapshot.epoch
                    ),
                });
            }
            snapshot.tenants
        } else {
            Vec::new()
        };

        // Open (or start) the epoch's WAL and replay its tail.
        let wal_path = dir.join(format!("wal-{epoch}.log"));
        let (wal, replay) = if wal_epochs.contains(&epoch) {
            Wal::open(&wal_path)?
        } else {
            let wal = Wal::create(&wal_path)?;
            sync_dir(&dir)?;
            (
                wal,
                WalReplay {
                    records: Vec::new(),
                    truncated_bytes: 0,
                },
            )
        };

        // Sweep everything that is not part of the recovered epoch.
        for &stale in snapshot_epochs.iter().filter(|&&e| e != epoch) {
            sweep.push(dir.join(format!("snapshot-{stale}.json")));
        }
        for &stale in wal_epochs.iter().filter(|&&e| e != epoch) {
            sweep.push(dir.join(format!("wal-{stale}.log")));
        }
        for path in sweep {
            fs::remove_file(&path).map_err(|e| io_err("sweep stale file", &path, e))?;
        }
        sync_dir(&dir)?;

        metrics.recovered_tenants = tenants.len() as u64;
        metrics.recovered_records = replay.records.len() as u64;
        metrics.wal_bytes = wal.bytes();
        let records_this_epoch = replay.records.len() as u64;
        Ok((
            ShardStore {
                dir,
                epoch,
                wal,
                sync_every: config.sync_every,
                compact_every: config.compact_every,
                records_this_epoch,
                metrics,
            },
            ShardRecovery {
                tenants,
                records: replay.records,
                truncated_bytes: replay.truncated_bytes,
            },
        ))
    }

    /// Logs one record, fsyncing on the configured batching schedule
    /// (`sync_every == 1` means every append is durable before this
    /// returns).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        self.wal.append(record)?;
        self.metrics.appends += 1;
        self.records_this_epoch += 1;
        if self.wal.unsynced() >= self.sync_every {
            self.sync()?;
        }
        self.metrics.wal_bytes = self.wal.bytes();
        Ok(())
    }

    /// Forces any batched appends to disk.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.wal.sync()? {
            self.metrics.fsyncs += 1;
        }
        Ok(())
    }

    /// `true` once the current epoch's WAL has accumulated enough records
    /// that the caller should capture its tenants and [`compact`].
    ///
    /// [`compact`]: ShardStore::compact
    pub fn compaction_due(&self) -> bool {
        self.records_this_epoch >= self.compact_every
    }

    /// Writes the next epoch's snapshot from the caller's `resident` tenants
    /// plus every evict file's content, commits it, rotates the WAL, and
    /// deletes the superseded epoch.
    pub fn compact(&mut self, resident: Vec<StoredTenantSnapshot>) -> Result<(), StoreError> {
        let mut tenants = resident;
        // Embed the eviction tier: evicted tenants are not in RAM, but their
        // evict files hold their exact current state (see module docs).
        // BTreeMap order keeps the embedded section deterministic.
        let mut evicted = BTreeMap::new();
        for snapshot in self.read_all_evicted()? {
            evicted.insert(snapshot.id.clone(), snapshot);
        }
        tenants.extend(evicted.into_values());

        let next = self.epoch + 1;
        let snapshot = ShardSnapshot {
            version: STORE_VERSION,
            epoch: next,
            tenants,
        };
        let tmp_path = self.dir.join(format!("snapshot-{next}.tmp"));
        let final_path = self.dir.join(format!("snapshot-{next}.json"));
        {
            let mut tmp = OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&tmp_path)
                .map_err(|e| io_err("create snapshot tmp", &tmp_path, e))?;
            tmp.write_all(snapshot.to_json_text().as_bytes())
                .map_err(|e| io_err("write snapshot", &tmp_path, e))?;
            tmp.sync_all()
                .map_err(|e| io_err("sync snapshot", &tmp_path, e))?;
        }
        // Anything still batched in the old WAL must be on disk before the
        // rename commits the new epoch: the old log is about to be deleted.
        self.sync()?;
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| io_err("commit snapshot", &final_path, e))?;
        sync_dir(&self.dir)?;

        let old_epoch = self.epoch;
        let new_wal = Wal::create(&self.dir.join(format!("wal-{next}.log")))?;
        sync_dir(&self.dir)?;
        let old_wal_path = self.wal.path().to_path_buf();
        self.wal = new_wal;
        self.epoch = next;
        self.records_this_epoch = 0;
        self.metrics.compactions += 1;
        self.metrics.wal_bytes = 0;

        // Best-effort: a crash here just leaves a stale epoch for the next
        // open's sweep.
        let _ = fs::remove_file(&old_wal_path);
        let _ = fs::remove_file(self.dir.join(format!("snapshot-{old_epoch}.json")));
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Moves a tenant into the disk tier: writes its snapshot as an evict
    /// file, after which the caller may drop the in-RAM tenant.
    pub fn write_evicted(&mut self, snapshot: &StoredTenantSnapshot) -> Result<(), StoreError> {
        let path = self.dir.join(evict_file_name(&snapshot.id));
        let tmp_path = path.with_extension("json.tmp");
        {
            let mut tmp = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)
                .map_err(|e| io_err("create evict tmp", &tmp_path, e))?;
            tmp.write_all(snapshot.to_json_text().as_bytes())
                .map_err(|e| io_err("write evict file", &tmp_path, e))?;
            tmp.sync_all()
                .map_err(|e| io_err("sync evict file", &tmp_path, e))?;
        }
        fs::rename(&tmp_path, &path).map_err(|e| io_err("commit evict file", &path, e))?;
        self.metrics.evictions += 1;
        Ok(())
    }

    /// Reads a tenant back out of the disk tier and deletes its evict file
    /// (the caller is about to make it resident again).
    pub fn read_evicted(&mut self, id: &str) -> Result<StoredTenantSnapshot, StoreError> {
        let path = self.dir.join(evict_file_name(id));
        let text = fs::read_to_string(&path).map_err(|e| io_err("read evict file", &path, e))?;
        let snapshot =
            StoredTenantSnapshot::from_json_text(&text).map_err(|source| StoreError::Codec {
                path: path.clone(),
                source,
            })?;
        if snapshot.id != id {
            return Err(StoreError::Corrupt {
                path,
                offset: 0,
                message: format!("evict file for {id:?} holds tenant {:?}", snapshot.id),
            });
        }
        fs::remove_file(&path).map_err(|e| io_err("remove evict file", &path, e))?;
        self.metrics.rehydrations += 1;
        Ok(snapshot)
    }

    /// Drops a tenant's evict file without rehydrating it (the tenant was
    /// removed from the engine while evicted). Returns `false` if no evict
    /// file existed.
    pub fn remove_evicted(&mut self, id: &str) -> Result<bool, StoreError> {
        let path = self.dir.join(evict_file_name(id));
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("remove evict file", &path, e)),
        }
    }

    /// Decodes every evict file currently in the shard directory.
    fn read_all_evicted(&self) -> Result<Vec<StoredTenantSnapshot>, StoreError> {
        let mut snapshots = Vec::new();
        let entries =
            fs::read_dir(&self.dir).map_err(|e| io_err("list shard directory", &self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list shard directory", &self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue;
            };
            if !(name.starts_with("evict-") && name.ends_with(".json")) {
                continue;
            }
            let path = entry.path();
            let text =
                fs::read_to_string(&path).map_err(|e| io_err("read evict file", &path, e))?;
            snapshots.push(
                StoredTenantSnapshot::from_json_text(&text).map_err(|source| {
                    StoreError::Codec {
                        path: path.clone(),
                        source,
                    }
                })?,
            );
        }
        Ok(snapshots)
    }

    /// The store's counters and gauges (see [`StoreMetrics`]).
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// The current compaction epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Valid bytes in the current epoch's WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// The shard's directory (`<data-dir>/shard-<i>`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
