//! # netband-store — durable tenant state for the serving engine
//!
//! The serving engine ([`netband-serve`]) keeps every tenant's learning state
//! — estimator arrays, RNG words, pending feedback, regret traces — in RAM.
//! This crate gives each engine shard a durable twin of that state, built
//! from three pieces:
//!
//! * **a write-ahead log** ([`ShardStore::append`]): every successful
//!   mutation (register / decide / feedback / flush / remove / drain) is
//!   framed with a length prefix and a CRC-32 and appended to
//!   `wal-<E>.log`, with fsyncs batched on a configurable schedule
//!   ([`StoreConfig::sync_every`]);
//! * **compacted snapshots** ([`ShardStore::compact`]): once the log grows
//!   past [`StoreConfig::compact_every`] records, the shard's tenants are
//!   captured into `snapshot-<E+1>.json` (committed by an atomic rename) and
//!   the covered log is deleted — recovery time is bounded by the compaction
//!   interval, not by the tenant's lifetime;
//! * **a disk eviction tier** ([`ShardStore::write_evicted`] /
//!   [`ShardStore::read_evicted`]): idle tenants beyond
//!   [`StoreConfig::resident_cap`] are written out as individual evict files
//!   and dropped from RAM, then read back transparently when traffic
//!   returns.
//!
//! Recovery ([`ShardStore::open`]) loads the newest committed snapshot and
//! returns the WAL tail for the engine to replay through its ordinary
//! command paths. Because every document round-trips `f64`s bit-exactly
//! (they are encoded by `netband-spec`'s strict codec) and decisions are
//! regenerated from the persisted RNG state rather than logged, a `kill -9`
//! at any round recovers the *exact* learning trajectory — the golden-trace
//! suites hold recovered engines to the same bits as uninterrupted ones.
//!
//! What lives where is a deliberate split: this crate owns files, framing,
//! checksums, fsync scheduling, and epoch rotation; the *documents* inside
//! the frames ([`WalRecord`](netband_spec::WalRecord),
//! [`StoredTenantSnapshot`](netband_spec::StoredTenantSnapshot),
//! [`ShardSnapshot`](netband_spec::ShardSnapshot))
//! are defined in [`netband_spec::store`], next to the codec whose
//! strictness they inherit; and the translation between live tenants and
//! their stored form lives in `netband-serve`, which owns the types being
//! translated.
//!
//! [`netband-serve`]: ../netband_serve/index.html
//!
//! ## Example
//!
//! ```
//! use netband_spec::WalRecord;
//! use netband_store::{ShardStore, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("netband_store_doc_{}", std::process::id()));
//! let config = StoreConfig::new(&dir);
//!
//! // First run: log a couple of mutations.
//! let (mut store, recovery) = ShardStore::open(&config, 0)?;
//! assert!(recovery.is_genesis());
//! store.append(&WalRecord::Decide { tenant: "exp-0".into(), count: 2 })?;
//! store.append(&WalRecord::Drain)?;
//! drop(store); // simulate the process dying
//!
//! // Second run: the log replays exactly.
//! let (_store, recovery) = ShardStore::open(&config, 0)?;
//! assert_eq!(recovery.records.len(), 2);
//! assert_eq!(recovery.records[1], WalRecord::Drain);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), netband_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use netband_spec::SpecError;

pub mod crc;
mod shard;
mod wal;

pub use crc::crc32;
pub use shard::{ShardRecovery, ShardStore};
pub use wal::{Wal, WalReplay, FRAME_OVERHEAD, MAX_FRAME_BYTES};

/// Configuration of an engine's durable store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Root data directory; each shard stores under `<dir>/shard-<i>`.
    pub dir: PathBuf,
    /// Fsync after this many WAL appends (`1` = every append is durable
    /// before the command acknowledges; larger values trade the crash
    /// window for throughput).
    pub sync_every: usize,
    /// Compact a shard once its WAL holds this many records.
    pub compact_every: u64,
    /// Maximum tenants a shard keeps resident in RAM; idle tenants beyond
    /// the cap move to the disk eviction tier. `None` disables eviction.
    pub resident_cap: Option<usize>,
}

impl StoreConfig {
    /// A store rooted at `dir` with the default schedule: every append
    /// fsynced, compaction every 1024 records, no resident cap.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            sync_every: 1,
            compact_every: 1024,
            resident_cap: None,
        }
    }

    /// Sets the fsync batching interval (must be ≥ 1).
    pub fn with_sync_every(mut self, sync_every: usize) -> Self {
        assert!(sync_every >= 1, "sync_every must be at least 1");
        self.sync_every = sync_every;
        self
    }

    /// Sets the compaction interval in WAL records (must be ≥ 1).
    pub fn with_compact_every(mut self, compact_every: u64) -> Self {
        assert!(compact_every >= 1, "compact_every must be at least 1");
        self.compact_every = compact_every;
        self
    }

    /// Caps resident tenants per shard, enabling the disk eviction tier.
    pub fn with_resident_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "resident_cap must be at least 1");
        self.resident_cap = Some(cap);
        self
    }
}

/// Counters and gauges of one shard's store, summed across shards by the
/// engine for exposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// WAL records appended.
    pub appends: u64,
    /// Fsyncs issued for the WAL.
    pub fsyncs: u64,
    /// Current WAL size in bytes (gauge; resets at compaction).
    pub wal_bytes: u64,
    /// Snapshot compactions performed.
    pub compactions: u64,
    /// Tenants moved to the disk tier.
    pub evictions: u64,
    /// Tenants read back from the disk tier.
    pub rehydrations: u64,
    /// WAL records replayed by the last open.
    pub recovered_records: u64,
    /// Tenants loaded from the snapshot by the last open.
    pub recovered_tenants: u64,
}

impl StoreMetrics {
    /// Accumulates another shard's metrics into this one (gauges add too:
    /// the engine-level `wal_bytes` is the fleet's total log footprint).
    pub fn absorb(&mut self, other: &StoreMetrics) {
        self.appends += other.appends;
        self.fsyncs += other.fsyncs;
        self.wal_bytes += other.wal_bytes;
        self.compactions += other.compactions;
        self.evictions += other.evictions;
        self.rehydrations += other.rehydrations;
        self.recovered_records += other.recovered_records;
        self.recovered_tenants += other.recovered_tenants;
    }
}

/// Errors of the durable store.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io {
        /// What the store was doing.
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// On-disk bytes that cannot be our own writing: a complete WAL frame
    /// with a checksum mismatch, an absurd length field, or a snapshot that
    /// contradicts its file name. Never produced by a torn append — torn
    /// tails are truncated silently.
    Corrupt {
        /// The corrupt file.
        path: PathBuf,
        /// Byte offset of the offending frame (0 for whole-file problems).
        offset: u64,
        /// What disagreed.
        message: String,
    },
    /// A frame or snapshot decoded as valid JSON framing but the strict
    /// document codec rejected the contents.
    Codec {
        /// The offending file.
        path: PathBuf,
        /// The codec's rejection.
        source: SpecError,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "{op} ({}): {source}", path.display())
            }
            StoreError::Corrupt {
                path,
                offset,
                message,
            } => write!(
                f,
                "corrupt store file {} at byte {offset}: {message}",
                path.display()
            ),
            StoreError::Codec { path, source } => {
                write!(f, "undecodable store document {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { .. } => None,
            StoreError::Codec { source, .. } => Some(source),
        }
    }
}

impl StoreError {
    /// `true` for the corruption variants that recovery must surface loudly
    /// ([`StoreError::Corrupt`] and [`StoreError::Codec`]), as opposed to
    /// environmental I/O failures.
    pub fn is_corruption(&self) -> bool {
        matches!(self, StoreError::Corrupt { .. } | StoreError::Codec { .. })
    }
}
