//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant), hand-rolled so the
//! WAL framing stays std-only.
//!
//! One checksum guards each WAL frame's payload. The point is not
//! cryptographic integrity — it is distinguishing the two failure modes a
//! log can wake up with after `kill -9`:
//!
//! * a **torn tail** (the final frame's bytes simply stop) is the expected
//!   signature of an interrupted append and is silently truncated away;
//! * a **complete frame whose checksum disagrees** means the disk handed back
//!   different bytes than were written — that is corruption, and recovery
//!   fails loudly rather than replaying a mangled record.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-indexed lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut byte = 0usize;
    while byte < 256 {
        let mut crc = byte as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[byte] = crc;
        byte += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, reflected, init/xorout `0xFFFF_FFFF` — matches
/// zlib's `crc32(0, …)`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the CRC catalogue (CRC-32/ISO-HDLC).
    #[test]
    fn matches_published_check_values() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let payload = b"{\"type\":\"drain\"}";
        let good = crc32(payload);
        let mut flipped = payload.to_vec();
        for byte in 0..flipped.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), good, "missed flip at {byte}:{bit}");
                flipped[byte] ^= 1 << bit;
            }
        }
    }
}
