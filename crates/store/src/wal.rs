//! The framed append-only log.
//!
//! One WAL file holds a sequence of frames, each wrapping the strict-JSON
//! encoding of a [`WalRecord`]:
//!
//! ```text
//! ┌────────────────┬──────────────────────┬────────────────┐
//! │ len: u32 (BE)  │ payload: `len` bytes │ crc32: u32 (BE)│
//! │                │ (WalRecord as JSON)  │ (over payload) │
//! └────────────────┴──────────────────────┴────────────────┘
//! ```
//!
//! Appends write a whole frame with one `write_all`, so an interrupted append
//! leaves a *prefix* of a valid frame at the tail — never interleaved or
//! reordered garbage. Opening therefore classifies the tail precisely:
//!
//! * frame bytes that simply stop (length field cut short, payload shorter
//!   than its length, missing checksum) are a **torn tail** — the expected
//!   `kill -9` signature — and are truncated away silently;
//! * a **complete** frame whose checksum or JSON decoding fails is
//!   **corruption** and aborts recovery loudly ([`StoreError::Corrupt`] /
//!   [`StoreError::Codec`]).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use netband_spec::WalRecord;

use crate::crc::crc32;
use crate::StoreError;

/// Upper bound on a single frame's payload. A length field beyond this is
/// not a plausible record of ours — it is garbage bytes where a length
/// should be, which a prefix-truncating crash cannot produce — so it is
/// treated as corruption rather than as a torn tail.
pub const MAX_FRAME_BYTES: u32 = 1 << 28;

/// Bytes of framing overhead per record (length prefix + checksum).
pub const FRAME_OVERHEAD: u64 = 8;

/// An open WAL file positioned for appending.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Valid bytes in the file (everything past a torn tail is truncated at
    /// open, so this is also the physical length).
    bytes: u64,
    /// Appends not yet covered by an fsync.
    unsynced: usize,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalReplay {
    /// The decoded records, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail discarded (0 for a cleanly closed log).
    pub truncated_bytes: u64,
}

fn io_err(op: &'static str, path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

impl Wal {
    /// Creates a new empty log at `path`, failing if one already exists
    /// (epoch rotation never reuses a file name).
    pub fn create(path: &Path) -> Result<Wal, StoreError> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| io_err("create wal", path, e))?;
        file.sync_all().map_err(|e| io_err("sync wal", path, e))?;
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            bytes: 0,
            unsynced: 0,
        })
    }

    /// Opens an existing log, replays every decodable frame, truncates any
    /// torn tail, and leaves the file positioned for appending.
    pub fn open(path: &Path) -> Result<(Wal, WalReplay), StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("open wal", path, e))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| io_err("read wal", path, e))?;

        let mut records = Vec::new();
        let mut offset = 0usize;
        loop {
            let remaining = buf.len() - offset;
            if remaining == 0 {
                break;
            }
            if remaining < 4 {
                break; // torn: the length field itself is cut short
            }
            let len_bytes: [u8; 4] = buf[offset..offset + 4].try_into().expect("4 bytes");
            let len = u32::from_be_bytes(len_bytes);
            if len > MAX_FRAME_BYTES {
                return Err(StoreError::Corrupt {
                    path: path.to_path_buf(),
                    offset: offset as u64,
                    message: format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
                });
            }
            let frame_end = offset + 4 + len as usize + 4;
            if buf.len() < frame_end {
                break; // torn: payload or checksum cut short
            }
            let payload = &buf[offset + 4..offset + 4 + len as usize];
            let stored_crc =
                u32::from_be_bytes(buf[frame_end - 4..frame_end].try_into().expect("4 bytes"));
            let actual_crc = crc32(payload);
            if stored_crc != actual_crc {
                return Err(StoreError::Corrupt {
                    path: path.to_path_buf(),
                    offset: offset as u64,
                    message: format!(
                        "frame checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
                    ),
                });
            }
            let text = std::str::from_utf8(payload).map_err(|e| StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: offset as u64,
                message: format!("frame payload is not UTF-8: {e}"),
            })?;
            let record = WalRecord::from_json_text(text).map_err(|source| StoreError::Codec {
                path: path.to_path_buf(),
                source,
            })?;
            records.push(record);
            offset = frame_end;
        }

        let truncated_bytes = (buf.len() - offset) as u64;
        if truncated_bytes > 0 {
            file.set_len(offset as u64)
                .map_err(|e| io_err("truncate torn wal tail", path, e))?;
            file.sync_all().map_err(|e| io_err("sync wal", path, e))?;
        }
        file.seek(SeekFrom::Start(offset as u64))
            .map_err(|e| io_err("seek wal", path, e))?;

        Ok((
            Wal {
                path: path.to_path_buf(),
                file,
                bytes: offset as u64,
                unsynced: 0,
            },
            WalReplay {
                records,
                truncated_bytes,
            },
        ))
    }

    /// Appends one record as a single framed write. Durability is the
    /// caller's schedule: nothing is fsynced until [`Wal::sync`].
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        let payload = record.to_json_text().into_bytes();
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_FRAME_BYTES)
            .ok_or(StoreError::Corrupt {
                path: self.path.clone(),
                offset: self.bytes,
                message: format!(
                    "record encodes to {} bytes, beyond the {MAX_FRAME_BYTES}-byte frame cap",
                    payload.len()
                ),
            })?;
        let mut frame = Vec::with_capacity(payload.len() + FRAME_OVERHEAD as usize);
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_be_bytes());
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append wal frame", &self.path, e))?;
        self.bytes += frame.len() as u64;
        self.unsynced += 1;
        Ok(())
    }

    /// Forces every appended frame to disk. Returns `true` if an fsync was
    /// actually issued (false when nothing was pending).
    pub fn sync(&mut self) -> Result<bool, StoreError> {
        if self.unsynced == 0 {
            return Ok(false);
        }
        self.file
            .sync_all()
            .map_err(|e| io_err("sync wal", &self.path, e))?;
        self.unsynced = 0;
        Ok(true)
    }

    /// Appends not yet covered by an fsync.
    pub fn unsynced(&self) -> usize {
        self.unsynced
    }

    /// Valid bytes in the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}
