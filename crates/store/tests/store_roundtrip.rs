//! Storage-layer contract tests: framing, torn-tail truncation, loud
//! corruption, epoch rotation, and the eviction tier — all below the serving
//! engine (the engine-level crash matrix lives in the workspace's
//! `failure_injection` suite).

use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use netband_spec::{
    ArmsSpec, FeedbackSpec, GraphSpec, PolicySpec, ScenarioSpec, SideBonus, StoredTenantMetrics,
    StoredTenantSnapshot, WalRecord, WorkloadSpec, SPEC_VERSION, STORE_VERSION,
};
use netband_store::{ShardStore, StoreConfig, StoreError};

/// A fresh per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "netband_store_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        Scratch(dir)
    }

    fn config(&self) -> StoreConfig {
        StoreConfig::new(&self.0)
    }

    fn shard_dir(&self, shard: usize) -> PathBuf {
        self.0.join(format!("shard-{shard}"))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn scenario(name: &str) -> ScenarioSpec {
    ScenarioSpec {
        version: SPEC_VERSION,
        name: name.into(),
        workload: WorkloadSpec {
            graph: GraphSpec::ErdosRenyi {
                num_arms: 5,
                edge_prob: 0.4,
            },
            arms: ArmsSpec::UniformMeanBernoulli { num_arms: 5 },
            family: None,
            drift: None,
            seed: 11,
        },
        policy: PolicySpec::DflSso,
        side_bonus: SideBonus::Observation,
        horizon: 40,
        replications: 1,
        seed: 3,
        feedback: FeedbackSpec::Immediate,
    }
}

fn tenant_snapshot(id: &str, round: u64) -> StoredTenantSnapshot {
    StoredTenantSnapshot {
        version: STORE_VERSION,
        id: id.into(),
        scenario: Box::new(scenario(id)),
        round,
        optimal_sum: round as f64 * 0.625,
        total_reward: round as f64 * 0.5,
        flush_max_pending: 1,
        flush_before_decide: true,
        auto_feedback: false,
        echo_feedback: true,
        rng: [round, 2, 3, 4],
        policy: Default::default(),
        realised: vec![0.125; round as usize],
        pseudo: vec![0.25; round as usize],
        pending: Vec::new(),
        metrics: StoredTenantMetrics::default(),
    }
}

fn sample_records() -> Vec<WalRecord> {
    vec![
        WalRecord::Register {
            id: "t0".into(),
            scenario: Box::new(scenario("t0")),
            flush_max_pending: 1,
            flush_before_decide: true,
            auto_feedback: false,
            echo_feedback: true,
        },
        WalRecord::Decide {
            tenant: "t0".into(),
            count: 3,
        },
        WalRecord::Flush {
            tenant: "t0".into(),
        },
        WalRecord::Drain,
    ]
}

#[test]
fn genesis_then_replay_round_trips_records() {
    let scratch = Scratch::new("replay");
    let records = sample_records();
    {
        let (mut store, recovery) = ShardStore::open(&scratch.config(), 0).unwrap();
        assert!(recovery.is_genesis());
        assert_eq!(store.epoch(), 0);
        for record in &records {
            store.append(record).unwrap();
        }
        assert_eq!(store.metrics().appends, 4);
        // sync_every = 1: every append is its own fsync.
        assert_eq!(store.metrics().fsyncs, 4);
        assert!(store.wal_bytes() > 0);
    }
    let (store, recovery) = ShardStore::open(&scratch.config(), 0).unwrap();
    assert_eq!(recovery.records, records);
    assert_eq!(recovery.truncated_bytes, 0);
    assert!(recovery.tenants.is_empty());
    assert_eq!(store.metrics().recovered_records, 4);
}

#[test]
fn fsyncs_batch_on_the_configured_schedule() {
    let scratch = Scratch::new("syncbatch");
    let config = scratch.config().with_sync_every(3);
    let (mut store, _) = ShardStore::open(&config, 0).unwrap();
    for _ in 0..7 {
        store.append(&WalRecord::Drain).unwrap();
    }
    // 7 appends at sync_every=3 → fsyncs after the 3rd and 6th only.
    assert_eq!(store.metrics().appends, 7);
    assert_eq!(store.metrics().fsyncs, 2);
    store.sync().unwrap();
    assert_eq!(store.metrics().fsyncs, 3);
    // Nothing pending: an explicit sync is a no-op, not a counted fsync.
    store.sync().unwrap();
    assert_eq!(store.metrics().fsyncs, 3);
}

#[test]
fn torn_tails_are_truncated_silently() {
    let scratch = Scratch::new("torn");
    let records = sample_records();
    let wal_path = scratch.shard_dir(0).join("wal-0.log");
    // Cut the file at every byte length between "all records" and "all
    // records plus one full extra frame": each cut must recover exactly the
    // intact prefix and drop the torn remainder.
    let (intact_len, full_len) = {
        let (mut store, _) = ShardStore::open(&scratch.config(), 0).unwrap();
        for record in &records {
            store.append(record).unwrap();
        }
        let intact = store.wal_bytes();
        store.append(&WalRecord::Drain).unwrap();
        (intact, store.wal_bytes())
    };
    let pristine = std::fs::read(&wal_path).unwrap();
    for cut in intact_len + 1..full_len {
        std::fs::write(&wal_path, &pristine[..cut as usize]).unwrap();
        let (store, recovery) = ShardStore::open(&scratch.config(), 0).unwrap();
        assert_eq!(recovery.records, records, "cut at {cut}");
        assert_eq!(recovery.truncated_bytes, cut - intact_len, "cut at {cut}");
        // The tail is gone from disk too: appends resume at the clean edge.
        assert_eq!(store.wal_bytes(), intact_len);
    }
}

#[test]
fn checksum_mismatches_fail_loudly() {
    let scratch = Scratch::new("crc");
    let wal_path = scratch.shard_dir(0).join("wal-0.log");
    {
        let (mut store, _) = ShardStore::open(&scratch.config(), 0).unwrap();
        for record in sample_records() {
            store.append(&record).unwrap();
        }
    }
    // Flip one payload byte of the *first* frame (a complete frame, so this
    // cannot be mistaken for a torn tail).
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[6] ^= 0x01;
    std::fs::write(&wal_path, &bytes).unwrap();
    let err = ShardStore::open(&scratch.config(), 0).unwrap_err();
    assert!(err.is_corruption(), "{err}");
    assert!(err.to_string().contains("checksum"), "{err}");
}

#[test]
fn absurd_length_fields_fail_loudly() {
    let scratch = Scratch::new("length");
    let wal_path = scratch.shard_dir(0).join("wal-0.log");
    {
        let (mut store, _) = ShardStore::open(&scratch.config(), 0).unwrap();
        store.append(&WalRecord::Drain).unwrap();
    }
    let mut file = OpenOptions::new().append(true).open(&wal_path).unwrap();
    file.write_all(&u32::MAX.to_be_bytes()).unwrap();
    drop(file);
    let err = ShardStore::open(&scratch.config(), 0).unwrap_err();
    assert!(err.is_corruption(), "{err}");
    assert!(err.to_string().contains("length"), "{err}");
}

#[test]
fn compaction_rotates_the_epoch_and_supersedes_the_wal() {
    let scratch = Scratch::new("compact");
    let config = scratch.config().with_compact_every(3);
    {
        let (mut store, _) = ShardStore::open(&config, 0).unwrap();
        for record in sample_records() {
            assert!(!store.compaction_due() || store.metrics().appends >= 3);
            store.append(&record).unwrap();
        }
        assert!(store.compaction_due());
        store
            .compact(vec![tenant_snapshot("t0", 3), tenant_snapshot("t1", 5)])
            .unwrap();
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.wal_bytes(), 0);
        assert!(!store.compaction_due());
        assert_eq!(store.metrics().compactions, 1);
        // Epoch 0's files are superseded and gone.
        assert!(!scratch.shard_dir(0).join("wal-0.log").exists());
        assert!(!scratch.shard_dir(0).join("snapshot-0.json").exists());
        // Post-compaction mutations land in the new WAL.
        store
            .append(&WalRecord::Decide {
                tenant: "t1".into(),
                count: 1,
            })
            .unwrap();
    }
    let (store, recovery) = ShardStore::open(&config, 0).unwrap();
    assert_eq!(store.epoch(), 1);
    assert_eq!(recovery.tenants.len(), 2);
    assert_eq!(recovery.tenants[0], tenant_snapshot("t0", 3));
    assert_eq!(recovery.tenants[1].id, "t1");
    assert_eq!(
        recovery.records,
        vec![WalRecord::Decide {
            tenant: "t1".into(),
            count: 1,
        }]
    );
    assert_eq!(store.metrics().recovered_tenants, 2);
    assert_eq!(store.metrics().recovered_records, 1);
}

#[test]
fn a_crash_between_snapshot_commit_and_wal_rotation_recovers_the_new_epoch() {
    let scratch = Scratch::new("midrotate");
    {
        let (mut store, _) = ShardStore::open(&scratch.config(), 0).unwrap();
        for record in sample_records() {
            store.append(&record).unwrap();
        }
        store.compact(vec![tenant_snapshot("t0", 4)]).unwrap();
    }
    // Simulate dying right after the rename committed epoch 1 but before the
    // new WAL was created: delete it, and resurrect epoch 0's files as the
    // stale leftovers such a crash would leave behind.
    let shard_dir = scratch.shard_dir(0);
    std::fs::remove_file(shard_dir.join("wal-1.log")).unwrap();
    std::fs::write(shard_dir.join("wal-0.log"), b"\xde\xad\xbe\xef").unwrap();
    let (store, recovery) = ShardStore::open(&scratch.config(), 0).unwrap();
    assert_eq!(store.epoch(), 1);
    assert_eq!(recovery.tenants, vec![tenant_snapshot("t0", 4)]);
    assert!(recovery.records.is_empty());
    // The stale epoch-0 WAL was swept, not parsed (its garbage bytes would
    // have failed loudly otherwise).
    assert!(!shard_dir.join("wal-0.log").exists());
    assert!(shard_dir.join("wal-1.log").exists());
}

#[test]
fn interrupted_snapshot_tmp_files_are_swept() {
    let scratch = Scratch::new("tmpsweep");
    {
        let (mut store, _) = ShardStore::open(&scratch.config(), 0).unwrap();
        store.append(&WalRecord::Drain).unwrap();
    }
    let tmp = scratch.shard_dir(0).join("snapshot-1.tmp");
    std::fs::write(&tmp, b"{ half a snapsho").unwrap();
    let (store, recovery) = ShardStore::open(&scratch.config(), 0).unwrap();
    assert_eq!(store.epoch(), 0);
    assert_eq!(recovery.records.len(), 1);
    assert!(!tmp.exists());
}

#[test]
fn eviction_tier_round_trips_and_compaction_embeds_it() {
    let scratch = Scratch::new("evict");
    let (mut store, _) = ShardStore::open(&scratch.config(), 0).unwrap();
    let parked = tenant_snapshot("idle/tenant with spaces", 7);
    store.write_evicted(&parked).unwrap();
    assert_eq!(store.metrics().evictions, 1);

    // Rehydration returns the exact snapshot and consumes the file.
    let back = store.read_evicted(&parked.id).unwrap();
    assert_eq!(back, parked);
    assert_eq!(store.metrics().rehydrations, 1);
    assert!(store.read_evicted(&parked.id).is_err(), "file was consumed");

    // Park two tenants and compact: both must be embedded alongside the
    // resident one, and their files must survive (they are still the only
    // live copy a rehydration can use).
    let idle_a = tenant_snapshot("idle-a", 2);
    let idle_b = tenant_snapshot("idle-b", 9);
    store.write_evicted(&idle_b).unwrap();
    store.write_evicted(&idle_a).unwrap();
    store.compact(vec![tenant_snapshot("resident", 1)]).unwrap();
    let rehydrated = store.read_evicted("idle-b").unwrap();
    assert_eq!(rehydrated, idle_b);

    drop(store);
    let (_store, recovery) = ShardStore::open(&scratch.config(), 0).unwrap();
    let ids: Vec<&str> = recovery.tenants.iter().map(|t| t.id.as_str()).collect();
    assert_eq!(ids, ["resident", "idle-a", "idle-b"]);
    // Recovery swept the (now stale) evict files: every tenant starts
    // resident again.
    assert!(!scratch
        .shard_dir(0)
        .read_dir()
        .unwrap()
        .filter_map(Result::ok)
        .any(|e| e.file_name().to_string_lossy().starts_with("evict-")));
}

#[test]
fn removing_an_evicted_tenant_drops_its_file() {
    let scratch = Scratch::new("evictrm");
    let (mut store, _) = ShardStore::open(&scratch.config(), 0).unwrap();
    let parked = tenant_snapshot("goner", 1);
    store.write_evicted(&parked).unwrap();
    assert!(store.remove_evicted("goner").unwrap());
    assert!(!store.remove_evicted("goner").unwrap());
    assert!(store.read_evicted("goner").is_err());
}

#[test]
fn distinct_ids_with_identical_sanitized_prefixes_do_not_collide() {
    let scratch = Scratch::new("evictname");
    let (mut store, _) = ShardStore::open(&scratch.config(), 0).unwrap();
    // Both sanitize to the same human-readable prefix; the FNV suffix keeps
    // the files apart.
    let a = tenant_snapshot("tenant:a", 1);
    let b = tenant_snapshot("tenant?a", 2);
    store.write_evicted(&a).unwrap();
    store.write_evicted(&b).unwrap();
    assert_eq!(store.read_evicted("tenant:a").unwrap(), a);
    assert_eq!(store.read_evicted("tenant?a").unwrap(), b);
}

#[test]
fn shards_are_isolated_directories() {
    let scratch = Scratch::new("shards");
    let config = scratch.config();
    let (mut s0, _) = ShardStore::open(&config, 0).unwrap();
    let (mut s1, _) = ShardStore::open(&config, 1).unwrap();
    s0.append(&WalRecord::Drain).unwrap();
    s1.append(&WalRecord::Decide {
        tenant: "only-here".into(),
        count: 1,
    })
    .unwrap();
    drop((s0, s1));
    let (_, r0) = ShardStore::open(&config, 0).unwrap();
    let (_, r1) = ShardStore::open(&config, 1).unwrap();
    assert_eq!(r0.records, vec![WalRecord::Drain]);
    assert_eq!(
        r1.records,
        vec![WalRecord::Decide {
            tenant: "only-here".into(),
            count: 1,
        }]
    );
}

#[test]
fn metrics_absorb_sums_shards() {
    let scratch = Scratch::new("metrics");
    let (mut s0, _) = ShardStore::open(&scratch.config(), 0).unwrap();
    let (mut s1, _) = ShardStore::open(&scratch.config(), 1).unwrap();
    s0.append(&WalRecord::Drain).unwrap();
    s1.append(&WalRecord::Drain).unwrap();
    s1.append(&WalRecord::Drain).unwrap();
    let mut total = netband_store::StoreMetrics::default();
    total.absorb(s0.metrics());
    total.absorb(s1.metrics());
    assert_eq!(total.appends, 3);
    assert_eq!(total.fsyncs, 3);
    assert_eq!(total.wal_bytes, s0.wal_bytes() + s1.wal_bytes());
}

#[test]
fn corruption_errors_identify_themselves() {
    let io = StoreError::Io {
        op: "read wal",
        path: "/nope".into(),
        source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
    };
    assert!(!io.is_corruption());
    let corrupt = StoreError::Corrupt {
        path: "/wal".into(),
        offset: 12,
        message: "checksum mismatch".into(),
    };
    assert!(corrupt.is_corruption());
    assert!(corrupt.to_string().contains("byte 12"));
}
