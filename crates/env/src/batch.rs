//! Batched, possibly delayed and out-of-order, feedback application.
//!
//! Real deployments of networked bandits (ad serving, channel access) do not
//! observe rewards at decide time: feedback for round `t` arrives later,
//! interleaved with feedback for other rounds, and is folded into the
//! estimators in batches. A [`FeedbackBatch`] is the environment-level entry
//! point for that regime: it queues feedback events keyed by the round they
//! belong to, and drains them **in round order** (a stable sort, so ties keep
//! arrival order), which makes batch application deterministic given the set
//! of queued events — regardless of the arrival interleaving.
//!
//! The buffer recycles its slots: a drained event's inner allocations
//! (observation lists, strategy vectors) stay warm for the next
//! [`FeedbackBatch::push_slot`], so callers that fill the returned slot in
//! place (e.g. with the `fill_*` methods of
//! [`NetworkedBandit`](crate::NetworkedBandit)) queue with no per-event
//! allocation. [`FeedbackBatch::push`] trades that away for convenience: it
//! overwrites the slot with an already-owned event, so the event's own
//! allocations replace the warm ones (this is what the serving engine does —
//! its events arrive by value from the wire).
//!
//! The type is generic over the feedback payload so the same machinery serves
//! both [`SinglePlayFeedback`](crate::SinglePlayFeedback) and
//! [`CombinatorialFeedback`](crate::CombinatorialFeedback) tenants.
//!
//! # Example
//!
//! ```
//! use netband_env::{FeedbackBatch, SinglePlayFeedback};
//!
//! let mut batch: FeedbackBatch<SinglePlayFeedback> = FeedbackBatch::new();
//! // Feedback arrives out of order ...
//! batch.push_slot(2).direct_reward = 0.25;
//! batch.push_slot(1).direct_reward = 0.75;
//! // ... but drains sorted by round.
//! let mut seen = Vec::new();
//! batch.drain_in_order(|round, fb| seen.push((round, fb.direct_reward)));
//! assert_eq!(seen, vec![(1, 0.75), (2, 0.25)]);
//! assert!(batch.is_empty());
//! ```

/// A reusable queue of delayed feedback events, drained in round order.
///
/// See the [module docs](self) for semantics and an example.
#[derive(Debug, Clone, Default)]
pub struct FeedbackBatch<F> {
    /// Slot storage. The first `live` entries are queued events; entries past
    /// `live` are drained slots kept warm for reuse.
    entries: Vec<(u64, F)>,
    live: usize,
}

/// Warm slots retained after a drain (see [`FeedbackBatch::drain_in_order`]).
///
/// A batch grows to whatever its largest flush needed, but without a cap a
/// single pathological flush (say a reconnect replaying a week of feedback)
/// would pin that peak slot count — and every payload allocation inside it —
/// for the rest of the tenant's life. Draining therefore trims the recycled
/// tail back to this many slots; steady-state flushes below the cap keep the
/// zero-allocation recycling behaviour unchanged.
pub const MAX_WARM_SLOTS: usize = 256;

impl<F: Default> FeedbackBatch<F> {
    /// An empty batch; slot capacity is acquired lazily.
    pub fn new() -> Self {
        FeedbackBatch {
            entries: Vec::new(),
            live: 0,
        }
    }

    /// Number of queued (undrained) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Queues an event for `round` and returns the payload slot to fill.
    ///
    /// The returned payload is a recycled slot whose previous contents are
    /// unspecified — callers must overwrite every field they later read
    /// (the `fill_*` methods of
    /// [`NetworkedBandit`](crate::NetworkedBandit) do exactly that).
    pub fn push_slot(&mut self, round: u64) -> &mut F {
        if self.live == self.entries.len() {
            self.entries.push((round, F::default()));
        } else {
            self.entries[self.live].0 = round;
        }
        let slot = &mut self.entries[self.live];
        self.live += 1;
        &mut slot.1
    }

    /// Visits the queued (undrained) events in arrival order without
    /// consuming them.
    ///
    /// This is the durable-capture path: persisting the pending queue in
    /// arrival order and re-queueing on restore reproduces the stable-sort
    /// tie order of the eventual [`FeedbackBatch::drain_in_order`] exactly,
    /// so a snapshot taken mid-flight does not perturb the flush.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &F)> {
        self.entries[..self.live]
            .iter()
            .map(|(round, f)| (*round, f))
    }

    /// Queues an event for `round` by value. The slot's warm allocations are
    /// dropped in favour of the ones `event` already owns — use
    /// [`FeedbackBatch::push_slot`] and fill in place when queueing must not
    /// allocate.
    pub fn push(&mut self, round: u64, event: F) {
        *self.push_slot(round) = event;
    }

    /// Drains every queued event in ascending round order (stable: events of
    /// the same round keep their arrival order), invoking `visit(round,
    /// event)` for each. The slots — including the payloads' inner
    /// allocations — are retained for reuse, up to [`MAX_WARM_SLOTS`]; the
    /// tail of a pathologically large flush is released instead of being kept
    /// warm forever.
    pub fn drain_in_order(&mut self, mut visit: impl FnMut(u64, &F)) {
        self.entries[..self.live].sort_by_key(|&(round, _)| round);
        for (round, event) in &self.entries[..self.live] {
            visit(*round, event);
        }
        self.live = 0;
        self.shrink_warm();
    }

    /// Discards every queued event without visiting it (slots stay warm, up
    /// to [`MAX_WARM_SLOTS`]).
    pub fn clear(&mut self) {
        self.live = 0;
        self.shrink_warm();
    }

    /// Number of drained slots currently kept warm for reuse.
    pub fn warm_slots(&self) -> usize {
        self.entries.len() - self.live
    }

    /// Applies the retained-capacity policy: everything queued stays, but at
    /// most [`MAX_WARM_SLOTS`] recycled slots survive a drain (both the slot
    /// entries and the slot vector's own excess capacity are released).
    fn shrink_warm(&mut self) {
        let cap = self.live + MAX_WARM_SLOTS;
        if self.entries.len() > cap {
            self.entries.truncate(cap);
            self.entries.shrink_to(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arms::ArmSet;
    use crate::bandit::{NetworkedBandit, SinglePlayFeedback};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn drains_sorted_by_round_with_stable_ties() {
        let mut batch: FeedbackBatch<f64> = FeedbackBatch::new();
        batch.push(3, 0.3);
        batch.push(1, 0.1);
        batch.push(3, 0.33);
        batch.push(2, 0.2);
        let mut seen = Vec::new();
        batch.drain_in_order(|round, &x| seen.push((round, x)));
        assert_eq!(seen, vec![(1, 0.1), (2, 0.2), (3, 0.3), (3, 0.33)]);
        assert!(batch.is_empty());
    }

    #[test]
    fn slots_are_recycled_after_drain() {
        let mut batch: FeedbackBatch<Vec<u8>> = FeedbackBatch::new();
        batch.push_slot(1).extend_from_slice(&[1, 2, 3]);
        batch.drain_in_order(|_, _| {});
        // The recycled slot still owns its previous allocation ...
        let slot = batch.push_slot(2);
        assert!(slot.capacity() >= 3);
        // ... and its previous (stale) contents, which the caller overwrites.
        slot.clear();
        slot.push(9);
        let mut seen = Vec::new();
        batch.drain_in_order(|round, v| seen.push((round, v.clone())));
        assert_eq!(seen, vec![(2, vec![9])]);
    }

    #[test]
    fn clear_discards_without_visiting() {
        let mut batch: FeedbackBatch<f64> = FeedbackBatch::new();
        batch.push(1, 0.5);
        batch.clear();
        assert!(batch.is_empty());
        batch.drain_in_order(|_, _| panic!("cleared batch must not visit"));
    }

    /// Regression test for the warm-slot retention policy: one pathologically
    /// large flush must not pin its peak slot count forever.
    #[test]
    fn oversized_flushes_shed_their_warm_tail() {
        let mut batch: FeedbackBatch<Vec<u8>> = FeedbackBatch::new();
        let huge = 4 * MAX_WARM_SLOTS;
        for round in 0..huge as u64 {
            batch.push_slot(round).push(7);
        }
        assert_eq!(batch.len(), huge);
        let mut seen = 0;
        batch.drain_in_order(|_, _| seen += 1);
        assert_eq!(seen, huge);
        // The recycled tail is capped (entries and vector capacity both).
        assert_eq!(batch.warm_slots(), MAX_WARM_SLOTS);
        assert!(batch.is_empty());
        // `clear` applies the same policy.
        for round in 0..huge as u64 {
            batch.push_slot(round);
        }
        batch.clear();
        assert_eq!(batch.warm_slots(), MAX_WARM_SLOTS);
        // Steady-state flushes below the cap still recycle every slot.
        for round in 0..8 {
            batch.push_slot(round);
        }
        batch.drain_in_order(|_, _| {});
        assert_eq!(batch.warm_slots(), MAX_WARM_SLOTS);
        // Live events are never shed: a full queue above the cap drains
        // completely even though the recycled tail will then be trimmed.
        for round in 0..(MAX_WARM_SLOTS + 10) as u64 {
            batch.push_slot(round);
        }
        assert_eq!(batch.len(), MAX_WARM_SLOTS + 10);
        let mut drained = 0;
        batch.drain_in_order(|_, _| drained += 1);
        assert_eq!(drained, MAX_WARM_SLOTS + 10);
    }

    #[test]
    fn queued_environment_feedback_round_trips() {
        let graph = generators::path(4);
        let env = NetworkedBandit::new(graph, ArmSet::bernoulli(&[0.2, 0.9, 0.4, 0.6])).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let samples = env.sample_rewards(&mut rng);
        let direct = env.feedback_single_from_samples(1, &samples);

        let mut batch: FeedbackBatch<SinglePlayFeedback> = FeedbackBatch::new();
        env.fill_single_feedback(1, &samples, batch.push_slot(1));
        let mut drained = Vec::new();
        batch.drain_in_order(|round, fb| drained.push((round, fb.clone())));
        assert_eq!(drained, vec![(1, direct)]);
    }

    #[test]
    fn iter_visits_arrival_order_without_consuming() {
        let mut batch: FeedbackBatch<f64> = FeedbackBatch::new();
        batch.push(3, 0.3);
        batch.push(1, 0.1);
        batch.push(3, 0.33);
        let seen: Vec<(u64, f64)> = batch.iter().map(|(round, &x)| (round, x)).collect();
        // Arrival order, not round order: the drain's stable sort is what
        // imposes round order, and a capture must precede it.
        assert_eq!(seen, vec![(3, 0.3), (1, 0.1), (3, 0.33)]);
        assert_eq!(batch.len(), 3);
        // Warm (drained) slots are never visited.
        batch.drain_in_order(|_, _| {});
        assert_eq!(batch.iter().count(), 0);
    }

    #[test]
    fn len_tracks_pushes_and_drains() {
        let mut batch: FeedbackBatch<f64> = FeedbackBatch::new();
        assert_eq!(batch.len(), 0);
        for round in 0..5 {
            batch.push(round, round as f64);
        }
        assert_eq!(batch.len(), 5);
        batch.drain_in_order(|_, _| {});
        assert_eq!(batch.len(), 0);
        batch.push(9, 9.0);
        assert_eq!(batch.len(), 1);
    }
}
