//! The networked bandit environment and its feedback models.
//!
//! A [`NetworkedBandit`] couples an [`ArmSet`] with a [`RelationGraph`] and
//! produces the feedback defined in Section II of the paper:
//!
//! * **single play, side observation (SSO)** — pulling `i` returns the direct
//!   reward `X_{i,t}` and reveals `X_{j,t}` for every `j ∈ N_i`;
//! * **single play, side reward (SSR)** — pulling `i` additionally *collects*
//!   `B_{i,t} = Σ_{j ∈ N_i} X_{j,t}`;
//! * **combinatorial play, side observation (CSO)** — pulling a strategy `s_x`
//!   collects `R_{x,t} = Σ_{i ∈ s_x} X_{i,t}` and reveals `X_{j,t}` for
//!   `j ∈ Y_x = ∪_{i ∈ s_x} N_i`;
//! * **combinatorial play, side reward (CSR)** — pulling `s_x` collects
//!   `CB_{x,t} = Σ_{i ∈ Y_x} X_{i,t}`.
//!
//! Both feedback structs carry all of those quantities, so the same pull can be
//! scored under either reward model; which one a policy *optimises* and which
//! one the simulator *charges regret for* is decided by the caller.

use std::fmt;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use netband_graph::{CsrGraph, RelationGraph};

use crate::arms::ArmSet;
use crate::feasible::{FeasibleSet, StrategyFamily};
use crate::ArmId;

/// Errors produced when constructing or querying an environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    /// The relation graph and the arm set disagree on the number of arms.
    SizeMismatch {
        /// Vertices of the relation graph.
        graph_vertices: usize,
        /// Arms in the arm set.
        num_arms: usize,
    },
    /// An arm index was out of range.
    ArmOutOfRange {
        /// The offending index.
        arm: ArmId,
        /// The number of arms.
        num_arms: usize,
    },
    /// A strategy was empty or contained an out-of-range arm.
    InvalidStrategy {
        /// Human-readable reason.
        reason: String,
    },
    /// A single-play workload was asked for its combinatorial strategy family
    /// (see [`crate::workloads::Workload::try_family`]).
    NoStrategyFamily {
        /// Name of the workload.
        workload: String,
    },
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::SizeMismatch {
                graph_vertices,
                num_arms,
            } => write!(
                f,
                "relation graph has {graph_vertices} vertices but the arm set has {num_arms} arms"
            ),
            EnvError::ArmOutOfRange { arm, num_arms } => {
                write!(f, "arm {arm} is out of range for {num_arms} arms")
            }
            EnvError::InvalidStrategy { reason } => write!(f, "invalid strategy: {reason}"),
            EnvError::NoStrategyFamily { workload } => {
                write!(
                    f,
                    "workload {workload:?} is single-play and has no strategy family"
                )
            }
        }
    }
}

impl std::error::Error for EnvError {}

/// Feedback from pulling a single arm.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SinglePlayFeedback {
    /// The pulled arm `I_t`.
    pub arm: ArmId,
    /// Direct reward `X_{I_t, t}` (the SSO reward).
    pub direct_reward: f64,
    /// Side reward `B_{I_t, t} = Σ_{j ∈ N_{I_t}} X_{j, t}` (the SSR reward).
    pub side_reward: f64,
    /// Every revealed sample: `(j, X_{j,t})` for `j ∈ N_{I_t}` (sorted by arm).
    pub observations: Vec<(ArmId, f64)>,
}

impl SinglePlayFeedback {
    /// Overwrites `self` with `src`'s contents, reusing the observation
    /// buffer — the allocation-free form of `*self = src.clone()` (identical
    /// resulting value) for warm reply slots.
    pub fn copy_from(&mut self, src: &SinglePlayFeedback) {
        self.arm = src.arm;
        self.direct_reward = src.direct_reward;
        self.side_reward = src.side_reward;
        self.observations.clear();
        self.observations.extend_from_slice(&src.observations);
    }
}

/// Feedback from pulling a combinatorial strategy.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CombinatorialFeedback {
    /// The pulled strategy `s_{I_t}` (sorted component arms).
    pub strategy: Vec<ArmId>,
    /// The observation set `Y_{I_t}` (sorted).
    pub observation_set: Vec<ArmId>,
    /// Direct reward `R_{I_t,t} = Σ_{i ∈ s} X_{i,t}` (the CSO reward).
    pub direct_reward: f64,
    /// Side reward `CB_{I_t,t} = Σ_{i ∈ Y} X_{i,t}` (the CSR reward).
    pub side_reward: f64,
    /// Every revealed sample: `(j, X_{j,t})` for `j ∈ Y_{I_t}` (sorted by arm).
    pub observations: Vec<(ArmId, f64)>,
}

impl CombinatorialFeedback {
    /// Overwrites `self` with `src`'s contents, reusing every inner buffer —
    /// the allocation-free form of `*self = src.clone()` (identical resulting
    /// value) for warm reply slots.
    pub fn copy_from(&mut self, src: &CombinatorialFeedback) {
        self.strategy.clear();
        self.strategy.extend_from_slice(&src.strategy);
        self.observation_set.clear();
        self.observation_set.extend_from_slice(&src.observation_set);
        self.direct_reward = src.direct_reward;
        self.side_reward = src.side_reward;
        self.observations.clear();
        self.observations.extend_from_slice(&src.observations);
    }
}

/// A networked stochastic bandit instance: `K` arms, their distributions, and
/// the relation graph over them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkedBandit {
    graph: RelationGraph,
    /// Flat (CSR) snapshot of the graph; every feedback construction reads its
    /// packed closed-neighbourhood rows instead of allocating neighbourhood
    /// vectors. Derived state: skipped by serde (keeping the serialized format
    /// at `{graph, arms, means}`) so a persisted instance can never carry a
    /// snapshot that disagrees with its graph. The cell starts empty after
    /// deserialization and is rebuilt lazily on first access, so a restored
    /// instance is usable without any manual refresh call.
    #[serde(skip)]
    csr: OnceLock<CsrGraph>,
    arms: ArmSet,
    /// Cached means, so per-round regret accounting does not re-query
    /// distributions.
    means: Vec<f64>,
}

/// The CSR snapshot is derived state, so equality is decided by the serialized
/// fields only — two instances that differ merely in whether the snapshot has
/// been materialised yet are equal.
impl PartialEq for NetworkedBandit {
    fn eq(&self, other: &Self) -> bool {
        self.graph == other.graph && self.arms == other.arms && self.means == other.means
    }
}

impl NetworkedBandit {
    /// Creates an environment from a relation graph and an arm set.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::SizeMismatch`] if the graph and the arm set disagree
    /// on the number of arms.
    pub fn new(graph: RelationGraph, arms: ArmSet) -> Result<Self, EnvError> {
        if graph.num_vertices() != arms.len() {
            return Err(EnvError::SizeMismatch {
                graph_vertices: graph.num_vertices(),
                num_arms: arms.len(),
            });
        }
        let means = arms.means();
        let csr = OnceLock::from(graph.to_csr());
        Ok(NetworkedBandit {
            graph,
            csr,
            arms,
            means,
        })
    }

    /// Number of arms `K`.
    pub fn num_arms(&self) -> usize {
        self.arms.len()
    }

    /// The relation graph `G`.
    pub fn graph(&self) -> &RelationGraph {
        &self.graph
    }

    /// The flat (CSR) runtime snapshot of the relation graph.
    ///
    /// The snapshot is derived state excluded from serialization; on an
    /// instance restored through `serde` this accessor rebuilds it from the
    /// relation graph on first use, so no manual refresh call is needed.
    /// After the first access (constructors materialise it eagerly) the call
    /// is a single atomic load.
    pub fn csr(&self) -> &CsrGraph {
        self.csr.get_or_init(|| self.graph.to_csr())
    }

    /// Rebuilds the CSR snapshot from the relation graph.
    ///
    /// Kept for callers that want to pay the rebuild eagerly (e.g. before
    /// entering a latency-sensitive section); since the snapshot is also
    /// rebuilt lazily by [`NetworkedBandit::csr`], calling this after
    /// deserializing is no longer required for correctness.
    pub fn refresh_csr(&mut self) {
        self.csr = OnceLock::from(self.graph.to_csr());
    }

    /// The arm set.
    pub fn arms(&self) -> &ArmSet {
        &self.arms
    }

    /// The true means `μ_i` (cached).
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    // ----- optimal values per scenario --------------------------------------

    /// `μ_1` — the best single-arm direct mean (SSO benchmark).
    pub fn best_single_direct_mean(&self) -> f64 {
        self.best_single_direct_mean_with(&self.means)
    }

    /// [`NetworkedBandit::best_single_direct_mean`] under explicit means —
    /// the per-round benchmark of a drifting world (see
    /// [`DriftSchedule::means_at`](crate::drift::DriftSchedule::means_at)).
    /// With `means == self.means()` this computes the exact same value.
    pub fn best_single_direct_mean_with(&self, means: &[f64]) -> f64 {
        means
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    /// Side-reward mean of arm `i`: `u_i = Σ_{j ∈ N_i} μ_j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn side_reward_mean(&self, i: ArmId) -> f64 {
        self.side_reward_mean_with(i, &self.means)
    }

    /// [`NetworkedBandit::side_reward_mean`] under explicit means.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range of the graph or `means`.
    pub fn side_reward_mean_with(&self, i: ArmId, means: &[f64]) -> f64 {
        self.csr()
            .closed_neighborhood(i)
            .iter()
            .map(|&j| means[j])
            .sum()
    }

    /// `u_1 = max_i Σ_{j ∈ N_i} μ_j` — the best single-arm side-reward mean
    /// (SSR benchmark). Returns 0 for an empty instance.
    pub fn best_single_side_mean(&self) -> f64 {
        self.best_single_side_mean_with(&self.means)
    }

    /// [`NetworkedBandit::best_single_side_mean`] under explicit means.
    ///
    /// # Panics
    ///
    /// Panics if `means.len() < K`.
    pub fn best_single_side_mean_with(&self, means: &[f64]) -> f64 {
        (0..self.num_arms())
            .map(|i| self.side_reward_mean_with(i, means))
            .fold(0.0, f64::max)
    }

    /// The arm attaining [`NetworkedBandit::best_single_side_mean`], if any.
    pub fn best_single_side_arm(&self) -> Option<ArmId> {
        (0..self.num_arms()).max_by(|&a, &b| {
            self.side_reward_mean(a)
                .partial_cmp(&self.side_reward_mean(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Direct mean of a strategy: `Σ_{i ∈ s} μ_i`.
    pub fn strategy_direct_mean(&self, strategy: &[ArmId]) -> f64 {
        self.strategy_direct_mean_with(strategy, &self.means)
    }

    /// [`NetworkedBandit::strategy_direct_mean`] under explicit means.
    pub fn strategy_direct_mean_with(&self, strategy: &[ArmId], means: &[f64]) -> f64 {
        strategy
            .iter()
            .filter(|&&i| i < self.num_arms())
            .map(|&i| means[i])
            .sum()
    }

    /// Side-reward mean of a strategy: `σ_x = Σ_{i ∈ Y_x} μ_i`.
    pub fn strategy_side_mean(&self, strategy: &[ArmId]) -> f64 {
        self.strategy_side_mean_with(strategy, &self.means)
    }

    /// [`NetworkedBandit::strategy_side_mean`] under explicit means.
    pub fn strategy_side_mean_with(&self, strategy: &[ArmId], means: &[f64]) -> f64 {
        self.graph
            .closed_neighborhood_of_set(strategy)
            .iter()
            .map(|&i| means[i])
            .sum()
    }

    /// `λ_1 = max_{x ∈ F} Σ_{i ∈ s_x} μ_i` — the best strategy direct mean (CSO
    /// benchmark) under a strategy family.
    pub fn best_strategy_direct_mean(&self, family: &StrategyFamily) -> f64 {
        self.best_strategy_direct_mean_with(family, &self.means)
    }

    /// [`NetworkedBandit::best_strategy_direct_mean`] under explicit means.
    ///
    /// # Panics
    ///
    /// Panics if `means.len() < K`.
    pub fn best_strategy_direct_mean_with(&self, family: &StrategyFamily, means: &[f64]) -> f64 {
        family
            .argmax_by_arm_weights(means, &self.graph)
            .map(|s| self.strategy_direct_mean_with(&s, means))
            .unwrap_or(0.0)
    }

    /// `σ_1 = max_{x ∈ F} Σ_{i ∈ Y_x} μ_i` — the best strategy side-reward mean
    /// (CSR benchmark) under a strategy family.
    pub fn best_strategy_side_mean(&self, family: &StrategyFamily) -> f64 {
        self.best_strategy_side_mean_with(family, &self.means)
    }

    /// [`NetworkedBandit::best_strategy_side_mean`] under explicit means.
    ///
    /// # Panics
    ///
    /// Panics if `means.len() < K`.
    pub fn best_strategy_side_mean_with(&self, family: &StrategyFamily, means: &[f64]) -> f64 {
        family
            .argmax_by_neighborhood_weights(means, &self.graph)
            .map(|s| self.strategy_side_mean_with(&s, means))
            .unwrap_or(0.0)
    }

    // ----- pulling -----------------------------------------------------------

    /// Draws the full reward vector `X_{·,t}` of one time slot.
    ///
    /// Exposed so that drivers which want *all* policies to face the exact same
    /// sample path can pre-draw the rewards and use
    /// [`NetworkedBandit::feedback_single_from_samples`].
    pub fn sample_rewards(&self, rng: &mut dyn rand::RngCore) -> Vec<f64> {
        self.arms.sample_all(rng)
    }

    /// Draws the full reward vector into `out` (cleared first), consuming the
    /// exact RNG stream of [`NetworkedBandit::sample_rewards`] without
    /// allocating once `out` has reached capacity `K`.
    pub fn sample_rewards_into(&self, rng: &mut dyn rand::RngCore, out: &mut Vec<f64>) {
        self.arms.sample_all_into(rng, out);
    }

    /// Pulls a single arm, drawing fresh rewards for this time slot.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range; use
    /// [`NetworkedBandit::try_pull_single`] for a fallible variant.
    pub fn pull_single(&self, arm: ArmId, rng: &mut dyn rand::RngCore) -> SinglePlayFeedback {
        let samples = self.sample_rewards(rng);
        self.feedback_single_from_samples(arm, &samples)
    }

    /// Fallible variant of [`NetworkedBandit::pull_single`].
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::ArmOutOfRange`] if `arm >= K`.
    pub fn try_pull_single(
        &self,
        arm: ArmId,
        rng: &mut dyn rand::RngCore,
    ) -> Result<SinglePlayFeedback, EnvError> {
        if arm >= self.num_arms() {
            return Err(EnvError::ArmOutOfRange {
                arm,
                num_arms: self.num_arms(),
            });
        }
        Ok(self.pull_single(arm, rng))
    }

    /// Builds single-play feedback from a pre-drawn reward vector.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range or `samples.len() != K`.
    pub fn feedback_single_from_samples(&self, arm: ArmId, samples: &[f64]) -> SinglePlayFeedback {
        let mut out = SinglePlayFeedback::default();
        self.fill_single_feedback(arm, samples, &mut out);
        out
    }

    /// Writes single-play feedback into `out`, reusing its observation buffer —
    /// the allocation-free form of
    /// [`NetworkedBandit::feedback_single_from_samples`], producing identical
    /// contents. The closed neighbourhood is read straight off the CSR
    /// snapshot, so a warm `out` makes the whole call allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range or `samples.len() != K`.
    pub fn fill_single_feedback(&self, arm: ArmId, samples: &[f64], out: &mut SinglePlayFeedback) {
        assert_eq!(
            samples.len(),
            self.num_arms(),
            "sample vector length must equal the number of arms"
        );
        out.arm = arm;
        out.direct_reward = samples[arm];
        out.observations.clear();
        out.observations.extend(
            self.csr()
                .closed_neighborhood(arm)
                .iter()
                .map(|&j| (j, samples[j])),
        );
        out.side_reward = out.observations.iter().map(|&(_, x)| x).sum();
    }

    /// Pulls a combinatorial strategy, drawing fresh rewards for this time slot.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidStrategy`] if the strategy is empty or refers
    /// to an arm outside the instance.
    pub fn pull_strategy(
        &self,
        strategy: &[ArmId],
        rng: &mut dyn rand::RngCore,
    ) -> Result<CombinatorialFeedback, EnvError> {
        let samples = self.sample_rewards(rng);
        self.feedback_strategy_from_samples(strategy, &samples)
    }

    /// Builds combinatorial feedback from a pre-drawn reward vector.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidStrategy`] if the strategy is empty or refers
    /// to an arm outside the instance.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != K`.
    pub fn feedback_strategy_from_samples(
        &self,
        strategy: &[ArmId],
        samples: &[f64],
    ) -> Result<CombinatorialFeedback, EnvError> {
        let mut out = CombinatorialFeedback::default();
        let mut mark = Vec::new();
        self.fill_strategy_feedback(strategy, samples, &mut mark, &mut out)?;
        Ok(out)
    }

    /// Writes combinatorial feedback into `out`, reusing its buffers and the
    /// caller-supplied `mark` table — the allocation-free form of
    /// [`NetworkedBandit::feedback_strategy_from_samples`], producing identical
    /// contents. `mark` is managed like in
    /// [`CsrGraph::closed_neighborhood_of_set_into`]: resized to `K` on demand
    /// and all-`false` again on return.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidStrategy`] if the strategy is empty or refers
    /// to an arm outside the instance; `out` is left unspecified in that case.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != K`.
    pub fn fill_strategy_feedback(
        &self,
        strategy: &[ArmId],
        samples: &[f64],
        mark: &mut Vec<bool>,
        out: &mut CombinatorialFeedback,
    ) -> Result<(), EnvError> {
        assert_eq!(
            samples.len(),
            self.num_arms(),
            "sample vector length must equal the number of arms"
        );
        if strategy.is_empty() {
            return Err(EnvError::InvalidStrategy {
                reason: "strategy is empty".to_owned(),
            });
        }
        if let Some(&bad) = strategy.iter().find(|&&i| i >= self.num_arms()) {
            return Err(EnvError::InvalidStrategy {
                reason: format!("arm {bad} is out of range for {} arms", self.num_arms()),
            });
        }
        out.strategy.clear();
        out.strategy.extend_from_slice(strategy);
        out.strategy.sort_unstable();
        out.strategy.dedup();
        self.csr()
            .closed_neighborhood_of_set_into(&out.strategy, mark, &mut out.observation_set);
        out.observations.clear();
        out.observations
            .extend(out.observation_set.iter().map(|&j| (j, samples[j])));
        out.direct_reward = out.strategy.iter().map(|&i| samples[i]).sum();
        out.side_reward = out.observations.iter().map(|&(_, x)| x).sum();
        Ok(())
    }

    /// Batched single pulls: for every entry of `arms`, draws one fresh reward
    /// vector (consuming the exact RNG stream `arms.len()` successive
    /// [`NetworkedBandit::pull_single`] calls would) and invokes
    /// `visit(round, feedback)`. All storage lives in `buf`, so the batch
    /// performs no per-round allocation once the buffers are warm.
    pub fn pull_many(
        &self,
        arms: &[ArmId],
        rng: &mut dyn rand::RngCore,
        buf: &mut PullBuffer,
        mut visit: impl FnMut(usize, &SinglePlayFeedback),
    ) {
        for (round, &arm) in arms.iter().enumerate() {
            let feedback = buf.pull_single(self, arm, rng);
            visit(round, feedback);
        }
    }
}

/// Reusable buffers for allocation-free pulls in the simulation hot loop.
///
/// The per-round cost of the map-based seed path was dominated by transient
/// allocations: a fresh sample vector, a neighbourhood vector, and observation
/// lists every round. A `PullBuffer` owns all of those once; after the first
/// round of a replication, [`PullBuffer::pull_single`] and
/// [`PullBuffer::pull_strategy`] allocate nothing and produce feedback
/// bit-identical to [`NetworkedBandit::pull_single`] /
/// [`NetworkedBandit::pull_strategy`].
///
/// # Example
///
/// ```
/// use netband_env::{ArmSet, NetworkedBandit, PullBuffer};
/// use netband_graph::generators;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let graph = generators::path(4);
/// let bandit = NetworkedBandit::new(graph, ArmSet::linear_bernoulli(4)).unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut buf = PullBuffer::new();
/// let feedback = buf.pull_single(&bandit, 1, &mut rng);
/// assert_eq!(feedback.arm, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PullBuffer {
    samples: Vec<f64>,
    single: SinglePlayFeedback,
    combinatorial: CombinatorialFeedback,
    mark: Vec<bool>,
}

impl PullBuffer {
    /// An empty buffer; capacity is acquired lazily on first use.
    pub fn new() -> Self {
        PullBuffer::default()
    }

    /// Pulls a single arm, drawing fresh rewards for this time slot into the
    /// reused sample buffer. Bit-identical to
    /// [`NetworkedBandit::pull_single`] on the same RNG state.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn pull_single(
        &mut self,
        bandit: &NetworkedBandit,
        arm: ArmId,
        rng: &mut dyn rand::RngCore,
    ) -> &SinglePlayFeedback {
        bandit.sample_rewards_into(rng, &mut self.samples);
        bandit.fill_single_feedback(arm, &self.samples, &mut self.single);
        &self.single
    }

    /// Builds single-play feedback from a pre-drawn reward vector (the coupled
    /// sample-path regime of [`NetworkedBandit::feedback_single_from_samples`])
    /// into the reused buffers.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range or `samples.len() != K`.
    pub fn single_from_samples(
        &mut self,
        bandit: &NetworkedBandit,
        arm: ArmId,
        samples: &[f64],
    ) -> &SinglePlayFeedback {
        bandit.fill_single_feedback(arm, samples, &mut self.single);
        &self.single
    }

    /// Pulls a combinatorial strategy, drawing fresh rewards for this time
    /// slot into the reused sample buffer. Bit-identical to
    /// [`NetworkedBandit::pull_strategy`] on the same RNG state.
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidStrategy`] if the strategy is empty or
    /// refers to an arm outside the instance.
    pub fn pull_strategy(
        &mut self,
        bandit: &NetworkedBandit,
        strategy: &[ArmId],
        rng: &mut dyn rand::RngCore,
    ) -> Result<&CombinatorialFeedback, EnvError> {
        bandit.sample_rewards_into(rng, &mut self.samples);
        bandit.fill_strategy_feedback(
            strategy,
            &self.samples,
            &mut self.mark,
            &mut self.combinatorial,
        )?;
        Ok(&self.combinatorial)
    }

    /// Pulls a single arm of a *drifting* world: rewards are Bernoulli draws
    /// of the caller-supplied per-round means (see
    /// [`DriftSchedule::means_at`](crate::drift::DriftSchedule::means_at))
    /// rather than the bandit's stationary distributions, consuming one `f64`
    /// draw per arm.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range or `means.len() != K`.
    pub fn pull_single_drifted(
        &mut self,
        bandit: &NetworkedBandit,
        means: &[f64],
        arm: ArmId,
        rng: &mut dyn rand::RngCore,
    ) -> &SinglePlayFeedback {
        crate::drift::sample_bernoulli_into(means, rng, &mut self.samples);
        bandit.fill_single_feedback(arm, &self.samples, &mut self.single);
        &self.single
    }

    /// Pulls a combinatorial strategy of a *drifting* world (the
    /// [`PullBuffer::pull_strategy`] counterpart of
    /// [`PullBuffer::pull_single_drifted`]).
    ///
    /// # Errors
    ///
    /// Returns [`EnvError::InvalidStrategy`] if the strategy is empty or
    /// refers to an arm outside the instance.
    ///
    /// # Panics
    ///
    /// Panics if `means.len() != K`.
    pub fn pull_strategy_drifted(
        &mut self,
        bandit: &NetworkedBandit,
        means: &[f64],
        strategy: &[ArmId],
        rng: &mut dyn rand::RngCore,
    ) -> Result<&CombinatorialFeedback, EnvError> {
        crate::drift::sample_bernoulli_into(means, rng, &mut self.samples);
        bandit.fill_strategy_feedback(
            strategy,
            &self.samples,
            &mut self.mark,
            &mut self.combinatorial,
        )?;
        Ok(&self.combinatorial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasible::StrategyFamily;
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 4-arm path graph 0-1-2-3 with known means.
    fn small_instance() -> NetworkedBandit {
        let graph = generators::path(4);
        let arms = ArmSet::bernoulli(&[0.2, 0.9, 0.4, 0.6]);
        NetworkedBandit::new(graph, arms).unwrap()
    }

    #[test]
    fn constructor_rejects_size_mismatch() {
        let graph = generators::path(3);
        let arms = ArmSet::bernoulli(&[0.5, 0.5]);
        let err = NetworkedBandit::new(graph, arms).unwrap_err();
        assert!(matches!(err, EnvError::SizeMismatch { .. }));
        assert!(err.to_string().contains("3 vertices"));
    }

    #[test]
    fn best_single_means_are_correct() {
        let env = small_instance();
        assert_eq!(env.best_single_direct_mean(), 0.9);
        // Side reward means: u_0 = 0.2+0.9, u_1 = 0.2+0.9+0.4, u_2 = 0.9+0.4+0.6,
        // u_3 = 0.4+0.6.
        assert!((env.side_reward_mean(0) - 1.1).abs() < 1e-12);
        assert!((env.side_reward_mean(1) - 1.5).abs() < 1e-12);
        assert!((env.side_reward_mean(2) - 1.9).abs() < 1e-12);
        assert!((env.side_reward_mean(3) - 1.0).abs() < 1e-12);
        assert!((env.best_single_side_mean() - 1.9).abs() < 1e-12);
        assert_eq!(env.best_single_side_arm(), Some(2));
    }

    #[test]
    fn ssr_optimum_can_differ_from_sso_optimum() {
        // The paper notes the SSR-optimal arm may differ from the SSO-optimal
        // arm; this instance exhibits exactly that (arm 1 vs arm 2).
        let env = small_instance();
        assert_eq!(env.arms().best_arm(), Some(1));
        assert_eq!(env.best_single_side_arm(), Some(2));
    }

    #[test]
    fn strategy_means_are_sums() {
        let env = small_instance();
        assert!((env.strategy_direct_mean(&[0, 2]) - 0.6).abs() < 1e-12);
        // Y_{0,2} = {0,1} ∪ {1,2,3} = {0,1,2,3}.
        assert!((env.strategy_side_mean(&[0, 2]) - 2.1).abs() < 1e-12);
        // Out-of-range arms are ignored in the mean helpers.
        assert!((env.strategy_direct_mean(&[0, 99]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn best_strategy_means_use_the_oracle() {
        let env = small_instance();
        let family = StrategyFamily::at_most_m(4, 2);
        // Best direct pair: arms 1 and 3 → 1.5.
        assert!((env.best_strategy_direct_mean(&family) - 1.5).abs() < 1e-12);
        // Best side pair covers everything: 2.1.
        assert!((env.best_strategy_side_mean(&family) - 2.1).abs() < 1e-12);
    }

    #[test]
    fn single_feedback_reveals_closed_neighborhood() {
        let env = small_instance();
        let mut rng = StdRng::seed_from_u64(1);
        let fb = env.pull_single(1, &mut rng);
        assert_eq!(fb.arm, 1);
        let observed: Vec<ArmId> = fb.observations.iter().map(|&(j, _)| j).collect();
        assert_eq!(observed, vec![0, 1, 2]);
        let sum: f64 = fb.observations.iter().map(|&(_, x)| x).sum();
        assert!((fb.side_reward - sum).abs() < 1e-12);
        let direct = fb
            .observations
            .iter()
            .find(|&&(j, _)| j == 1)
            .map(|&(_, x)| x)
            .unwrap();
        assert_eq!(fb.direct_reward, direct);
    }

    #[test]
    fn try_pull_single_rejects_out_of_range() {
        let env = small_instance();
        let mut rng = StdRng::seed_from_u64(1);
        let err = env.try_pull_single(10, &mut rng).unwrap_err();
        assert!(matches!(err, EnvError::ArmOutOfRange { arm: 10, .. }));
    }

    #[test]
    fn strategy_feedback_matches_definitions() {
        let env = small_instance();
        let samples = vec![1.0, 0.0, 1.0, 0.0];
        let fb = env
            .feedback_strategy_from_samples(&[0, 3], &samples)
            .unwrap();
        assert_eq!(fb.strategy, vec![0, 3]);
        assert_eq!(fb.observation_set, vec![0, 1, 2, 3]);
        assert!((fb.direct_reward - 1.0).abs() < 1e-12);
        assert!((fb.side_reward - 2.0).abs() < 1e-12);
        assert_eq!(fb.observations.len(), 4);
    }

    #[test]
    fn strategy_feedback_normalises_duplicates() {
        let env = small_instance();
        let samples = vec![0.5, 0.5, 0.5, 0.5];
        let fb = env
            .feedback_strategy_from_samples(&[2, 0, 2], &samples)
            .unwrap();
        assert_eq!(fb.strategy, vec![0, 2]);
        assert!((fb.direct_reward - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strategy_feedback_rejects_bad_strategies() {
        let env = small_instance();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            env.pull_strategy(&[], &mut rng).unwrap_err(),
            EnvError::InvalidStrategy { .. }
        ));
        assert!(matches!(
            env.pull_strategy(&[0, 7], &mut rng).unwrap_err(),
            EnvError::InvalidStrategy { .. }
        ));
    }

    #[test]
    fn edgeless_graph_degenerates_to_classic_bandit() {
        let graph = generators::edgeless(3);
        let arms = ArmSet::bernoulli(&[0.1, 0.5, 0.9]);
        let env = NetworkedBandit::new(graph, arms).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let fb = env.pull_single(0, &mut rng);
        assert_eq!(fb.observations.len(), 1);
        assert_eq!(fb.side_reward, fb.direct_reward);
        assert_eq!(env.best_single_side_mean(), 0.9);
    }

    #[test]
    fn complete_graph_side_reward_is_total_mean() {
        let graph = generators::complete(3);
        let arms = ArmSet::bernoulli(&[0.1, 0.5, 0.9]);
        let env = NetworkedBandit::new(graph, arms).unwrap();
        for i in 0..3 {
            assert!((env.side_reward_mean(i) - 1.5).abs() < 1e-12);
        }
    }

    /// Reconstructs the exact state `serde` leaves behind: the serialized
    /// fields (`graph`, `arms`, `means`) populated, the `#[serde(skip)]` CSR
    /// cell at its `Default` (empty). Regression test for the old footgun
    /// where such an instance panicked (or silently disagreed with its graph)
    /// until the caller remembered `refresh_csr()`.
    fn freshly_deserialized(env: &NetworkedBandit) -> NetworkedBandit {
        NetworkedBandit {
            graph: env.graph.clone(),
            csr: OnceLock::default(),
            arms: env.arms.clone(),
            means: env.means.clone(),
        }
    }

    #[test]
    fn deserialized_bandit_is_usable_without_manual_refresh() {
        let env = small_instance();
        let restored = freshly_deserialized(&env);
        // The lazily rebuilt snapshot matches the eagerly built one ...
        assert_eq!(restored.csr(), env.csr());
        // ... and every feedback path works straight away.
        let mut rng = StdRng::seed_from_u64(5);
        let fb = restored.pull_single(1, &mut rng);
        let observed: Vec<ArmId> = fb.observations.iter().map(|&(j, _)| j).collect();
        assert_eq!(observed, vec![0, 1, 2]);
        assert!((restored.side_reward_mean(2) - 1.9).abs() < 1e-12);
        let samples = vec![1.0, 0.0, 1.0, 0.0];
        let strat_fb = freshly_deserialized(&env)
            .feedback_strategy_from_samples(&[0, 3], &samples)
            .unwrap();
        assert_eq!(strat_fb.observation_set, vec![0, 1, 2, 3]);
        // Derived state does not participate in equality.
        assert_eq!(freshly_deserialized(&env), env);
    }

    #[test]
    fn refresh_csr_still_rebuilds_eagerly() {
        let env = small_instance();
        let mut restored = freshly_deserialized(&env);
        restored.refresh_csr();
        assert_eq!(restored.csr(), env.csr());
    }

    #[test]
    fn pre_drawn_samples_make_pulls_reproducible() {
        let env = small_instance();
        let mut rng = StdRng::seed_from_u64(3);
        let samples = env.sample_rewards(&mut rng);
        let fb1 = env.feedback_single_from_samples(2, &samples);
        let fb2 = env.feedback_single_from_samples(2, &samples);
        assert_eq!(fb1, fb2);
    }
}
