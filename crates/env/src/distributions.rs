//! Reward distributions with support in `[0, 1]`.
//!
//! The paper assumes every arm's reward distribution has support in `[0, 1]`
//! (Section II). This module implements the distribution families used by the
//! simulations and tests from scratch on top of `rand` — in particular Beta and
//! truncated-Gaussian sampling, so no extra statistical dependency is needed.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A reward distribution with support contained in `[0, 1]`.
///
/// Implementors must guarantee that [`RewardDistribution::sample`] always
/// returns a value in `[0, 1]` and that [`RewardDistribution::mean`] is the true
/// expectation of the sampling distribution.
pub trait RewardDistribution: Send + Sync + std::fmt::Debug {
    /// The expectation `μ` of the distribution.
    fn mean(&self) -> f64;

    /// Draws one sample; always in `[0, 1]`.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;

    /// The variance of the distribution, if known in closed form.
    fn variance(&self) -> Option<f64> {
        None
    }
}

/// A concrete, serialisable reward distribution.
///
/// This enum is the workhorse used by [`crate::arms::ArmSet`]; the
/// [`RewardDistribution`] trait exists so that downstream users can plug in
/// their own families without touching this crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Bernoulli with success probability `p`.
    Bernoulli {
        /// Success probability in `[0, 1]`.
        p: f64,
    },
    /// Continuous uniform on `[lo, hi] ⊆ [0, 1]`.
    Uniform {
        /// Lower end of the support.
        lo: f64,
        /// Upper end of the support.
        hi: f64,
    },
    /// Beta distribution with shape parameters `alpha, beta > 0`.
    Beta {
        /// First shape parameter (`> 0`).
        alpha: f64,
        /// Second shape parameter (`> 0`).
        beta: f64,
    },
    /// Gaussian with the given mean and standard deviation, truncated (by
    /// rejection, with clamping as a fallback) to `[0, 1]`.
    ///
    /// The reported [`Distribution::mean`] is the empirical mean of the
    /// truncated distribution computed by numeric integration at construction
    /// time would be overkill; instead we keep `mu` inside `[0,1]` and use a
    /// small `sigma`, for which the truncation bias is negligible. The exact
    /// truncated mean is exposed through [`Distribution::truncated_gaussian`].
    TruncatedGaussian {
        /// Location parameter of the underlying Gaussian (kept in `[0, 1]`).
        mu: f64,
        /// Scale parameter of the underlying Gaussian (`> 0`).
        sigma: f64,
    },
    /// Deterministic reward `value ∈ [0, 1]`.
    PointMass {
        /// The constant reward.
        value: f64,
    },
    /// Finite discrete distribution over `values` with probabilities `probs`.
    Discrete {
        /// Support points, each in `[0, 1]`.
        values: Vec<f64>,
        /// Probabilities; normalised at sampling time.
        probs: Vec<f64>,
    },
}

impl Distribution {
    /// Bernoulli distribution with success probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(p: f64) -> Self {
        Distribution::Bernoulli {
            p: p.clamp(0.0, 1.0),
        }
    }

    /// Uniform distribution on `[lo, hi]`, clamped into `[0, 1]` and reordered
    /// if necessary.
    pub fn uniform(lo: f64, hi: f64) -> Self {
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(0.0, 1.0);
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        Distribution::Uniform { lo, hi }
    }

    /// Beta distribution; parameters are floored at a small positive constant.
    pub fn beta(alpha: f64, beta: f64) -> Self {
        Distribution::Beta {
            alpha: alpha.max(1e-6),
            beta: beta.max(1e-6),
        }
    }

    /// Truncated Gaussian on `[0, 1]`.
    pub fn truncated_gaussian(mu: f64, sigma: f64) -> Self {
        Distribution::TruncatedGaussian {
            mu: mu.clamp(0.0, 1.0),
            sigma: sigma.max(1e-9),
        }
    }

    /// A deterministic reward.
    pub fn point_mass(value: f64) -> Self {
        Distribution::PointMass {
            value: value.clamp(0.0, 1.0),
        }
    }

    /// A discrete distribution; values are clamped to `[0,1]`, probabilities are
    /// normalised (uniform if they sum to 0 or the vectors mismatch).
    pub fn discrete(values: Vec<f64>, probs: Vec<f64>) -> Self {
        let values: Vec<f64> = values.into_iter().map(|v| v.clamp(0.0, 1.0)).collect();
        let probs = if probs.len() == values.len() && probs.iter().sum::<f64>() > 0.0 {
            probs
        } else {
            vec![1.0; values.len()]
        };
        Distribution::Discrete { values, probs }
    }
}

impl RewardDistribution for Distribution {
    fn mean(&self) -> f64 {
        match self {
            Distribution::Bernoulli { p } => *p,
            Distribution::Uniform { lo, hi } => 0.5 * (lo + hi),
            Distribution::Beta { alpha, beta } => alpha / (alpha + beta),
            Distribution::TruncatedGaussian { mu, sigma } => truncated_normal_mean(*mu, *sigma),
            Distribution::PointMass { value } => *value,
            Distribution::Discrete { values, probs } => {
                let total: f64 = probs.iter().sum();
                if total <= 0.0 || values.is_empty() {
                    return 0.0;
                }
                values
                    .iter()
                    .zip(probs.iter())
                    .map(|(v, p)| v * p / total)
                    .sum()
            }
        }
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        match self {
            Distribution::Bernoulli { p } => {
                if rng.gen::<f64>() < *p {
                    1.0
                } else {
                    0.0
                }
            }
            Distribution::Uniform { lo, hi } => {
                if hi <= lo {
                    *lo
                } else {
                    lo + (hi - lo) * rng.gen::<f64>()
                }
            }
            Distribution::Beta { alpha, beta } => sample_beta(*alpha, *beta, rng),
            Distribution::TruncatedGaussian { mu, sigma } => {
                // Rejection sampling with a bounded number of attempts; fall back
                // to clamping, which only matters for extreme (mu, sigma).
                for _ in 0..64 {
                    let x = mu + sigma * sample_standard_normal(rng);
                    if (0.0..=1.0).contains(&x) {
                        return x;
                    }
                }
                (mu + sigma * sample_standard_normal(rng)).clamp(0.0, 1.0)
            }
            Distribution::PointMass { value } => *value,
            Distribution::Discrete { values, probs } => {
                if values.is_empty() {
                    return 0.0;
                }
                let total: f64 = probs.iter().sum();
                let mut ticket = rng.gen::<f64>() * total;
                for (v, p) in values.iter().zip(probs.iter()) {
                    if ticket < *p {
                        return *v;
                    }
                    ticket -= p;
                }
                *values.last().expect("non-empty by the check above")
            }
        }
    }

    fn variance(&self) -> Option<f64> {
        match self {
            Distribution::Bernoulli { p } => Some(p * (1.0 - p)),
            Distribution::Uniform { lo, hi } => Some((hi - lo) * (hi - lo) / 12.0),
            Distribution::Beta { alpha, beta } => {
                let s = alpha + beta;
                Some(alpha * beta / (s * s * (s + 1.0)))
            }
            Distribution::PointMass { .. } => Some(0.0),
            Distribution::TruncatedGaussian { .. } => None,
            Distribution::Discrete { values, probs } => {
                let total: f64 = probs.iter().sum();
                if total <= 0.0 || values.is_empty() {
                    return Some(0.0);
                }
                let mean = self.mean();
                Some(
                    values
                        .iter()
                        .zip(probs.iter())
                        .map(|(v, p)| (v - mean) * (v - mean) * p / total)
                        .sum(),
                )
            }
        }
    }
}

/// One standard-normal sample via the Box–Muller transform.
fn sample_standard_normal(rng: &mut dyn rand::RngCore) -> f64 {
    // Avoid log(0).
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gamma(shape, 1) sample via Marsaglia–Tsang, with the standard boost for
/// shape < 1.
fn sample_gamma(shape: f64, rng: &mut dyn rand::RngCore) -> f64 {
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^{1/a}
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Beta(alpha, beta) sample as a ratio of Gamma variates.
fn sample_beta(alpha: f64, beta: f64, rng: &mut dyn rand::RngCore) -> f64 {
    let x = sample_gamma(alpha, rng);
    let y = sample_gamma(beta, rng);
    if x + y <= 0.0 {
        0.5
    } else {
        (x / (x + y)).clamp(0.0, 1.0)
    }
}

/// Mean of a Gaussian `N(mu, sigma²)` truncated to `[0, 1]`.
fn truncated_normal_mean(mu: f64, sigma: f64) -> f64 {
    // E[X | 0 ≤ X ≤ 1] = mu + sigma (φ(a) − φ(b)) / (Φ(b) − Φ(a))
    let a = (0.0 - mu) / sigma;
    let b = (1.0 - mu) / sigma;
    let phi = |x: f64| (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let cap_phi = |x: f64| 0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2));
    let z = cap_phi(b) - cap_phi(a);
    if z <= 1e-12 {
        return mu.clamp(0.0, 1.0);
    }
    (mu + sigma * (phi(a) - phi(b)) / z).clamp(0.0, 1.0)
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, max abs error
/// ~1.5e-7), sufficient for reporting truncated-Gaussian means.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean(dist: &Distribution, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    fn assert_support(dist: &Distribution, n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            let x = dist.sample(&mut rng);
            assert!(
                (0.0..=1.0).contains(&x),
                "sample {x} out of [0,1] for {dist:?}"
            );
        }
    }

    #[test]
    fn bernoulli_mean_and_support() {
        let d = Distribution::bernoulli(0.3);
        assert_eq!(d.mean(), 0.3);
        assert_eq!(d.variance(), Some(0.3 * 0.7));
        assert_support(&d, 2000, 1);
        let emp = empirical_mean(&d, 20_000, 2);
        assert!((emp - 0.3).abs() < 0.02, "empirical {emp}");
        // Extremes.
        assert_eq!(Distribution::bernoulli(-2.0).mean(), 0.0);
        assert_eq!(Distribution::bernoulli(5.0).mean(), 1.0);
    }

    #[test]
    fn uniform_mean_and_support() {
        let d = Distribution::uniform(0.2, 0.6);
        assert!((d.mean() - 0.4).abs() < 1e-12);
        assert_support(&d, 2000, 3);
        let emp = empirical_mean(&d, 20_000, 4);
        assert!((emp - 0.4).abs() < 0.01);
        // Reversed and out-of-range bounds are normalised.
        let d2 = Distribution::uniform(1.5, -0.5);
        assert!((d2.mean() - 0.5).abs() < 1e-12);
        // Degenerate interval behaves like a point mass.
        let d3 = Distribution::uniform(0.7, 0.7);
        assert_eq!(d3.sample(&mut StdRng::seed_from_u64(0)), 0.7);
    }

    #[test]
    fn beta_mean_and_support() {
        let d = Distribution::beta(2.0, 5.0);
        assert!((d.mean() - 2.0 / 7.0).abs() < 1e-12);
        assert_support(&d, 2000, 5);
        let emp = empirical_mean(&d, 30_000, 6);
        assert!((emp - 2.0 / 7.0).abs() < 0.01, "empirical {emp}");
        // Shape < 1 exercises the boosting branch.
        let d2 = Distribution::beta(0.5, 0.5);
        assert_support(&d2, 2000, 7);
        let emp2 = empirical_mean(&d2, 30_000, 8);
        assert!((emp2 - 0.5).abs() < 0.02, "empirical {emp2}");
    }

    #[test]
    fn truncated_gaussian_mean_and_support() {
        let d = Distribution::truncated_gaussian(0.5, 0.1);
        assert!((d.mean() - 0.5).abs() < 1e-6);
        assert_support(&d, 2000, 9);
        let emp = empirical_mean(&d, 30_000, 10);
        assert!((emp - 0.5).abs() < 0.01);
        // A mean pushed against the boundary is pulled inwards by truncation.
        let d2 = Distribution::truncated_gaussian(0.0, 0.3);
        assert!(d2.mean() > 0.0);
        assert_support(&d2, 2000, 11);
        let emp2 = empirical_mean(&d2, 30_000, 12);
        assert!(
            (emp2 - d2.mean()).abs() < 0.02,
            "emp {emp2} vs {}",
            d2.mean()
        );
    }

    #[test]
    fn point_mass_is_constant() {
        let d = Distribution::point_mass(0.42);
        assert_eq!(d.mean(), 0.42);
        assert_eq!(d.variance(), Some(0.0));
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 0.42);
        }
    }

    #[test]
    fn discrete_distribution_mean_and_sampling() {
        let d = Distribution::discrete(vec![0.0, 0.5, 1.0], vec![0.25, 0.5, 0.25]);
        assert!((d.mean() - 0.5).abs() < 1e-12);
        assert_support(&d, 2000, 14);
        let emp = empirical_mean(&d, 30_000, 15);
        assert!((emp - 0.5).abs() < 0.01);
        // Mismatched probabilities fall back to uniform weights.
        let d2 = Distribution::discrete(vec![0.0, 1.0], vec![0.3]);
        assert!((d2.mean() - 0.5).abs() < 1e-12);
        // Empty support.
        let d3 = Distribution::discrete(vec![], vec![]);
        assert_eq!(d3.mean(), 0.0);
        assert_eq!(d3.sample(&mut StdRng::seed_from_u64(0)), 0.0);
    }

    #[test]
    fn variances_are_sensible() {
        assert!(Distribution::uniform(0.0, 1.0).variance().unwrap() - 1.0 / 12.0 < 1e-12);
        let beta = Distribution::beta(2.0, 2.0);
        assert!((beta.variance().unwrap() - 0.05).abs() < 1e-12);
        let disc = Distribution::discrete(vec![0.0, 1.0], vec![0.5, 0.5]);
        assert!((disc.variance().unwrap() - 0.25).abs() < 1e-12);
        assert!(Distribution::truncated_gaussian(0.5, 0.1)
            .variance()
            .is_none());
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!((erf(3.0) - 0.9999779).abs() < 1e-5);
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let d = Distribution::beta(1.5, 3.0);
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
