//! Deterministic nonstationarity: drifting arm means as a pure function of
//! the round number.
//!
//! The paper's environment is stationary — `μ` is fixed for the whole run. A
//! [`DriftSchedule`] turns the same [`NetworkedBandit`] instance into a
//! drifting world by mapping its *base* means to the effective means of any
//! round:
//!
//! * [`GradualDrift`] — a bounded sinusoidal modulation with a per-arm phase
//!   offset, so arms rise and fall out of step and the identity of the best
//!   arm changes smoothly over a period;
//! * [`ChangePoint`] — an abrupt re-assignment at a given round: the base
//!   mean vector is cyclically rotated, so the good arms become bad ones and
//!   vice versa (rotations accumulate across change points);
//! * [`ChurnWindow`] — arm deactivation: inside the window the arm's mean is
//!   forced to `0`, modelling an arm that temporarily leaves the system.
//!
//! Crucially, [`DriftSchedule::means_at`] consumes **no randomness** — the
//! drifted means are a deterministic function of `(base, round)`. Everything
//! stochastic still flows through the caller's RNG when the drifted means are
//! sampled (see [`sample_bernoulli_into`]), which is what lets a serving
//! tenant snapshot/restore a drifting world bit-exactly: the round counter is
//! the only extra state, and it is already checkpointed.
//!
//! [`NetworkedBandit`]: crate::NetworkedBandit

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ArmId;

/// Smooth sinusoidal mean drift with a per-arm phase offset.
///
/// At round `t`, arm `i` of a `K`-arm instance is shifted by
/// `amplitude · sin(2π · ((t mod period)/period + i/K))`; the result is
/// clamped to `[0, 1]` with the rest of the drift pipeline. The phase offset
/// `i/K` staggers the arms so the best arm changes identity as the wave
/// travels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradualDrift {
    /// Peak shift added to (and subtracted from) each base mean; keep in
    /// `[0, 1]` for meaningful Bernoulli means.
    pub amplitude: f64,
    /// Rounds per full oscillation (≥ 1).
    pub period: u64,
}

/// An abrupt change of the world at a given round.
///
/// From `round` onwards the base mean vector is cyclically rotated by
/// `rotation` positions (arm `i` takes the base mean of arm
/// `(i + rotation) mod K`). Rotations of successive change points accumulate,
/// so each change point re-shuffles which arms are good.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChangePoint {
    /// First round (1-based) at which the rotated means take effect.
    pub round: u64,
    /// Cyclic rotation applied to the base mean vector.
    pub rotation: usize,
}

/// A window during which one arm is deactivated (its mean forced to `0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnWindow {
    /// The arm that churns out. Windows naming arms outside the instance are
    /// ignored by [`DriftSchedule::means_at`].
    pub arm: ArmId,
    /// First round (1-based, inclusive) of the outage.
    pub from: u64,
    /// First round after the outage (exclusive end).
    pub to: u64,
}

impl ChurnWindow {
    /// `true` when `round` falls inside the outage window.
    pub fn contains(&self, round: u64) -> bool {
        self.from <= round && round < self.to
    }
}

/// A complete drift schedule: any combination of gradual drift, change
/// points, and churn windows.
///
/// The default schedule is empty and leaves the base means untouched —
/// [`DriftSchedule::is_trivial`] reports that case so drivers can keep the
/// cheaper stationary path.
///
/// # Example
///
/// ```
/// use netband_env::drift::{ChangePoint, DriftSchedule};
///
/// let drift = DriftSchedule {
///     change_points: vec![ChangePoint { round: 3, rotation: 1 }],
///     ..DriftSchedule::default()
/// };
/// let base = [0.9, 0.1];
/// let mut means = [0.0; 2];
/// drift.means_at(&base, 1, &mut means);
/// assert_eq!(means, [0.9, 0.1]);
/// drift.means_at(&base, 3, &mut means);
/// assert_eq!(means, [0.1, 0.9]); // rotated: the best arm moved
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DriftSchedule {
    /// Smooth sinusoidal drift, if any.
    pub gradual: Option<GradualDrift>,
    /// Abrupt mean rotations, in increasing round order.
    pub change_points: Vec<ChangePoint>,
    /// Arm outage windows.
    pub churn: Vec<ChurnWindow>,
}

impl DriftSchedule {
    /// `true` when the schedule has no components and
    /// [`DriftSchedule::means_at`] is the identity (modulo the `[0, 1]`
    /// clamp).
    pub fn is_trivial(&self) -> bool {
        self.gradual.is_none() && self.change_points.is_empty() && self.churn.is_empty()
    }

    /// The cumulative rotation in effect at `round`.
    pub fn rotation_at(&self, round: u64) -> usize {
        self.change_points
            .iter()
            .filter(|cp| cp.round <= round)
            .map(|cp| cp.rotation)
            .sum()
    }

    /// Writes the effective means of `round` (1-based) into `out`,
    /// allocation-free: rotate the base means by the accumulated change-point
    /// rotation, add the gradual wave, zero churned-out arms, clamp to
    /// `[0, 1]`.
    ///
    /// Deterministic and RNG-free: calling this for any round in any order
    /// always produces the same vector.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != base.len()`.
    pub fn means_at(&self, base: &[f64], round: u64, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            base.len(),
            "drifted-mean buffer length must equal the number of arms"
        );
        let k = base.len();
        if k == 0 {
            return;
        }
        let rotation = self.rotation_at(round) % k;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = base[(i + rotation) % k];
        }
        if let Some(GradualDrift { amplitude, period }) = self.gradual {
            let period = period.max(1);
            let phase = (round % period) as f64 / period as f64;
            for (i, slot) in out.iter_mut().enumerate() {
                let arm_phase = phase + i as f64 / k as f64;
                *slot += amplitude * (2.0 * std::f64::consts::PI * arm_phase).sin();
            }
        }
        for window in &self.churn {
            if window.arm < k && window.contains(round) {
                out[window.arm] = 0.0;
            }
        }
        for slot in out.iter_mut() {
            *slot = slot.clamp(0.0, 1.0);
        }
    }
}

/// Draws one Bernoulli reward per mean into `out` (cleared first), consuming
/// exactly one `f64` draw per arm — the same RNG-stream shape as sampling a
/// [`Distribution::Bernoulli`](crate::distributions::Distribution) arm bank,
/// so a drifting world walks its RNG at the same rate as the stationary
/// sampler.
pub fn sample_bernoulli_into(means: &[f64], rng: &mut dyn rand::RngCore, out: &mut Vec<f64>) {
    out.clear();
    out.extend(
        means
            .iter()
            .map(|&p| if rng.gen::<f64>() < p { 1.0 } else { 0.0 }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const BASE: [f64; 4] = [0.9, 0.5, 0.3, 0.1];

    #[test]
    fn trivial_schedule_is_the_identity() {
        let drift = DriftSchedule::default();
        assert!(drift.is_trivial());
        let mut out = [0.0; 4];
        for round in [1u64, 17, 10_000] {
            drift.means_at(&BASE, round, &mut out);
            assert_eq!(out, BASE);
        }
    }

    #[test]
    fn change_points_accumulate_rotations() {
        let drift = DriftSchedule {
            change_points: vec![
                ChangePoint {
                    round: 10,
                    rotation: 1,
                },
                ChangePoint {
                    round: 20,
                    rotation: 2,
                },
            ],
            ..DriftSchedule::default()
        };
        assert!(!drift.is_trivial());
        let mut out = [0.0; 4];
        drift.means_at(&BASE, 9, &mut out);
        assert_eq!(out, BASE);
        drift.means_at(&BASE, 10, &mut out);
        assert_eq!(out, [0.5, 0.3, 0.1, 0.9]);
        drift.means_at(&BASE, 20, &mut out);
        assert_eq!(out, [0.1, 0.9, 0.5, 0.3]);
        assert_eq!(drift.rotation_at(25), 3);
    }

    #[test]
    fn gradual_drift_moves_the_best_arm() {
        let drift = DriftSchedule {
            gradual: Some(GradualDrift {
                amplitude: 0.4,
                period: 100,
            }),
            ..DriftSchedule::default()
        };
        let base = [0.5; 4];
        let mut out = [0.0; 4];
        let mut best_arms = std::collections::BTreeSet::new();
        for round in 1..=100u64 {
            drift.means_at(&base, round, &mut out);
            assert!(out.iter().all(|&m| (0.0..=1.0).contains(&m)));
            let best = (0..4)
                .max_by(|&a, &b| out[a].partial_cmp(&out[b]).unwrap())
                .unwrap();
            best_arms.insert(best);
        }
        // The phase offsets rotate the identity of the best arm over a period.
        assert!(best_arms.len() >= 3, "best arms seen: {best_arms:?}");
    }

    #[test]
    fn churn_zeroes_only_inside_the_window() {
        let drift = DriftSchedule {
            churn: vec![ChurnWindow {
                arm: 0,
                from: 5,
                to: 8,
            }],
            ..DriftSchedule::default()
        };
        let mut out = [0.0; 4];
        drift.means_at(&BASE, 4, &mut out);
        assert_eq!(out[0], 0.9);
        drift.means_at(&BASE, 5, &mut out);
        assert_eq!(out[0], 0.0);
        drift.means_at(&BASE, 7, &mut out);
        assert_eq!(out[0], 0.0);
        drift.means_at(&BASE, 8, &mut out);
        assert_eq!(out[0], 0.9);
        // A window naming a nonexistent arm is ignored.
        let drift = DriftSchedule {
            churn: vec![ChurnWindow {
                arm: 99,
                from: 1,
                to: 100,
            }],
            ..DriftSchedule::default()
        };
        drift.means_at(&BASE, 1, &mut out);
        assert_eq!(out, BASE);
    }

    #[test]
    fn means_at_is_deterministic_and_order_free() {
        let drift = DriftSchedule {
            gradual: Some(GradualDrift {
                amplitude: 0.2,
                period: 50,
            }),
            change_points: vec![ChangePoint {
                round: 30,
                rotation: 2,
            }],
            churn: vec![ChurnWindow {
                arm: 1,
                from: 10,
                to: 40,
            }],
        };
        let mut forward = Vec::new();
        let mut out = [0.0; 4];
        for round in 1..=60u64 {
            drift.means_at(&BASE, round, &mut out);
            forward.push(out);
        }
        for round in (1..=60u64).rev() {
            drift.means_at(&BASE, round, &mut out);
            let expect = forward[(round - 1) as usize];
            for i in 0..4 {
                assert_eq!(out[i].to_bits(), expect[i].to_bits(), "round {round}");
            }
        }
    }

    #[test]
    fn bernoulli_sampling_consumes_one_draw_per_arm() {
        let means = [0.0, 1.0, 0.5];
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut out = Vec::new();
        sample_bernoulli_into(&means, &mut a, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], 0.0); // p = 0 never succeeds
        assert_eq!(out[1], 1.0); // p = 1 always succeeds (gen is in [0,1))
                                 // Stream shape: exactly three f64 draws.
        use rand::Rng;
        let draws: Vec<f64> = (0..3).map(|_| b.gen::<f64>()).collect();
        let mut c = StdRng::seed_from_u64(5);
        let mut again = Vec::new();
        sample_bernoulli_into(&means, &mut c, &mut again);
        assert_eq!(out, again);
        assert_eq!(out[2], if draws[2] < 0.5 { 1.0 } else { 0.0 });
    }
}
