//! Arm sets: the `K` reward distributions of a bandit instance.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::distributions::{Distribution, RewardDistribution};
use crate::ArmId;

/// The set of `K` arms of a networked bandit instance.
///
/// An [`ArmSet`] owns one [`Distribution`] per arm and can draw the full reward
/// vector `X_{·,t}` of a time slot. The environment reveals only the part of
/// that vector allowed by the feedback model; drawing everything up front keeps
/// the stochastic process identical across feedback models and policies, which
/// is what makes regret curves comparable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmSet {
    distributions: Vec<Distribution>,
}

impl ArmSet {
    /// Creates an arm set from explicit distributions.
    pub fn new(distributions: Vec<Distribution>) -> Self {
        ArmSet { distributions }
    }

    /// Bernoulli arms with the given success probabilities.
    pub fn bernoulli(means: &[f64]) -> Self {
        ArmSet {
            distributions: means.iter().map(|&p| Distribution::bernoulli(p)).collect(),
        }
    }

    /// Arms with uniformly-drawn means in `[0, 1]` and Bernoulli rewards — the
    /// workload of the paper's simulations ("each following an i.i.d. random
    /// process over time with mean between [0, 1]").
    pub fn random_bernoulli<R: Rng + ?Sized>(num_arms: usize, rng: &mut R) -> Self {
        let means: Vec<f64> = (0..num_arms).map(|_| rng.gen::<f64>()).collect();
        ArmSet::bernoulli(&means)
    }

    /// Arms with uniformly-drawn means and Beta-distributed rewards with the
    /// given concentration (`alpha + beta = concentration`), useful when a
    /// continuous reward in `[0, 1]` is wanted.
    pub fn random_beta<R: Rng + ?Sized>(num_arms: usize, concentration: f64, rng: &mut R) -> Self {
        let concentration = concentration.max(1e-3);
        let distributions = (0..num_arms)
            .map(|_| {
                let mean: f64 = rng.gen::<f64>().clamp(1e-3, 1.0 - 1e-3);
                Distribution::beta(mean * concentration, (1.0 - mean) * concentration)
            })
            .collect();
        ArmSet { distributions }
    }

    /// Arms with evenly spaced means `1/(K+1), 2/(K+1), …, K/(K+1)` and
    /// Bernoulli rewards; handy for deterministic tests where the identity of
    /// the optimal arm must be known.
    pub fn linear_bernoulli(num_arms: usize) -> Self {
        let means: Vec<f64> = (1..=num_arms)
            .map(|i| i as f64 / (num_arms as f64 + 1.0))
            .collect();
        ArmSet::bernoulli(&means)
    }

    /// Number of arms `K`.
    pub fn len(&self) -> usize {
        self.distributions.len()
    }

    /// Returns `true` if there are no arms.
    pub fn is_empty(&self) -> bool {
        self.distributions.is_empty()
    }

    /// The distribution of arm `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn distribution(&self, i: ArmId) -> &Distribution {
        &self.distributions[i]
    }

    /// The mean rewards `μ_1, …, μ_K`.
    pub fn means(&self) -> Vec<f64> {
        self.distributions.iter().map(|d| d.mean()).collect()
    }

    /// The arm with the highest mean (the paper's "arm 1"); `None` if empty.
    pub fn best_arm(&self) -> Option<ArmId> {
        let means = self.means();
        (0..means.len()).max_by(|&a, &b| {
            means[a]
                .partial_cmp(&means[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The highest mean `μ_1`; 0 if there are no arms.
    pub fn best_mean(&self) -> f64 {
        self.best_arm().map(|i| self.means()[i]).unwrap_or(0.0)
    }

    /// Gaps `Δ_i = μ_1 − μ_i` for every arm.
    pub fn gaps(&self) -> Vec<f64> {
        let means = self.means();
        let best = self.best_mean();
        means.iter().map(|&m| best - m).collect()
    }

    /// The smallest non-zero gap `Δ_min`, if any suboptimal arm exists.
    pub fn min_gap(&self) -> Option<f64> {
        self.gaps()
            .into_iter()
            .filter(|&g| g > 1e-12)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Draws the full reward vector `X_{·,t}` of one time slot.
    pub fn sample_all(&self, rng: &mut dyn rand::RngCore) -> Vec<f64> {
        self.distributions.iter().map(|d| d.sample(rng)).collect()
    }

    /// Draws the full reward vector into `out` (cleared first), consuming the
    /// exact RNG stream of [`ArmSet::sample_all`] without allocating once
    /// `out` has reached capacity `K`.
    pub fn sample_all_into(&self, rng: &mut dyn rand::RngCore, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.distributions.iter().map(|d| d.sample(rng)));
    }

    /// Draws a single arm's reward.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample(&self, i: ArmId, rng: &mut dyn rand::RngCore) -> f64 {
        self.distributions[i].sample(rng)
    }
}

impl FromIterator<Distribution> for ArmSet {
    fn from_iter<T: IntoIterator<Item = Distribution>>(iter: T) -> Self {
        ArmSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_arm_set_reports_means_and_best() {
        let arms = ArmSet::bernoulli(&[0.2, 0.8, 0.5]);
        assert_eq!(arms.len(), 3);
        assert_eq!(arms.means(), vec![0.2, 0.8, 0.5]);
        assert_eq!(arms.best_arm(), Some(1));
        assert_eq!(arms.best_mean(), 0.8);
        let gaps = arms.gaps();
        assert!((gaps[0] - 0.6).abs() < 1e-12);
        assert!((gaps[1]).abs() < 1e-12);
        assert!((gaps[2] - 0.3).abs() < 1e-12);
        assert!((arms.min_gap().unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_arm_set_edge_cases() {
        let arms = ArmSet::new(vec![]);
        assert!(arms.is_empty());
        assert_eq!(arms.best_arm(), None);
        assert_eq!(arms.best_mean(), 0.0);
        assert_eq!(arms.min_gap(), None);
        assert!(arms.sample_all(&mut StdRng::seed_from_u64(0)).is_empty());
    }

    #[test]
    fn identical_means_have_no_min_gap() {
        let arms = ArmSet::bernoulli(&[0.5, 0.5, 0.5]);
        assert_eq!(arms.min_gap(), None);
        assert!(arms.gaps().iter().all(|&g| g.abs() < 1e-12));
    }

    #[test]
    fn linear_bernoulli_is_increasing() {
        let arms = ArmSet::linear_bernoulli(9);
        let means = arms.means();
        assert_eq!(means.len(), 9);
        assert!(means.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(arms.best_arm(), Some(8));
        assert!((means[4] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_bernoulli_is_deterministic_under_seed() {
        let a = ArmSet::random_bernoulli(20, &mut StdRng::seed_from_u64(3));
        let b = ArmSet::random_bernoulli(20, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert!(a.means().iter().all(|&m| (0.0..=1.0).contains(&m)));
    }

    #[test]
    fn random_beta_means_are_interior() {
        let arms = ArmSet::random_beta(15, 10.0, &mut StdRng::seed_from_u64(4));
        assert_eq!(arms.len(), 15);
        assert!(arms.means().iter().all(|&m| m > 0.0 && m < 1.0));
    }

    #[test]
    fn sample_all_has_one_entry_per_arm_in_range() {
        let arms = ArmSet::bernoulli(&[0.1, 0.9, 0.4, 0.6]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let xs = arms.sample_all(&mut rng);
            assert_eq!(xs.len(), 4);
            assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn from_iterator_collects() {
        let arms: ArmSet = (0..5)
            .map(|i| Distribution::point_mass(i as f64 / 10.0))
            .collect();
        assert_eq!(arms.len(), 5);
        assert_eq!(arms.best_arm(), Some(4));
    }
}
