//! Stochastic networked-bandit environments.
//!
//! This crate is the "machine" side of the reproduction of *Networked Stochastic
//! Multi-Armed Bandits with Combinatorial Strategies* (Tang & Zhou, ICDCS 2017):
//! bounded reward distributions, arm sets, the four feedback models
//! (single/combinatorial play × side observation/side reward), feasible strategy
//! families, and the combinatorial oracles the learning policies call.
//!
//! * [`distributions`] — reward distributions with support in `[0, 1]`
//!   (Bernoulli, uniform, Beta, truncated Gaussian, point mass, discrete),
//!   implemented from scratch on top of `rand`.
//! * [`arms`] — arm sets: a vector of distributions plus convenience
//!   constructors for the workloads used in the paper's simulations.
//! * [`bandit`] — [`NetworkedBandit`], the environment that couples an arm set
//!   with a relation graph and produces the side-observation / side-reward
//!   feedback of Section II.
//! * [`feasible`] — feasible strategy families (`F`) and combinatorial oracles
//!   (exact and greedy) for combinatorial play.
//! * [`batch`] — [`FeedbackBatch`], the queue for delayed, out-of-order
//!   feedback that drains in round order (the serving engine's flush path).
//! * [`drift`] — [`DriftSchedule`], deterministic nonstationarity: gradual
//!   mean drift, abrupt change points, and arm churn as a pure function of
//!   the round number.
//!
//! # Example
//!
//! ```
//! use netband_env::arms::ArmSet;
//! use netband_env::bandit::NetworkedBandit;
//! use netband_graph::generators;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let graph = generators::erdos_renyi(10, 0.3, &mut rng);
//! let arms = ArmSet::bernoulli(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]);
//! let bandit = NetworkedBandit::new(graph, arms).unwrap();
//!
//! let feedback = bandit.pull_single(3, &mut rng);
//! assert_eq!(feedback.arm, 3);
//! // Side observation: the sample of every neighbour of arm 3 is revealed.
//! assert!(feedback.observations.iter().any(|&(arm, _)| arm == 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arms;
pub mod bandit;
pub mod batch;
pub mod distributions;
pub mod drift;
pub mod feasible;
pub mod workloads;

pub use arms::ArmSet;
pub use bandit::{
    CombinatorialFeedback, EnvError, NetworkedBandit, PullBuffer, SinglePlayFeedback,
};
pub use batch::{FeedbackBatch, MAX_WARM_SLOTS};
pub use distributions::RewardDistribution;
pub use drift::{ChangePoint, ChurnWindow, DriftSchedule, GradualDrift};
pub use feasible::{FeasibleSet, StrategyBank, StrategyFamily};
pub use workloads::Workload;

/// Identifier of an arm; re-exported from `netband-graph` so downstream code
/// needs only one import.
pub type ArmId = netband_graph::ArmId;
