//! Feasible strategy families `F` and combinatorial oracles.
//!
//! Combinatorial play (Sections IV and VI) selects, at each time slot, a
//! strategy `s_x ∈ F` of at most `M` arms satisfying the underlying constraint.
//! The paper assumes the per-round combinatorial problem ("given weights, find
//! the feasible strategy with the largest total weight") can be solved optimally;
//! this module provides those oracles:
//!
//! * by **arm weights** — maximise `Σ_{i ∈ s_x} w_i` (the objective of DFL-CSO's
//!   reduction and of the CUCB/LLR baselines);
//! * by **neighbourhood weights** — maximise `Σ_{i ∈ Y_x} w_i` where
//!   `Y_x = ∪_{i ∈ s_x} N_i` (the objective of DFL-CSR, Equation 47).
//!
//! Exact solvers are used whenever the family can be enumerated within a
//! configurable budget; otherwise a documented greedy fallback is applied
//! (`ln`-factor coverage guarantee for the neighbourhood objective).

use serde::{Deserialize, Serialize};

use netband_graph::independent::independent_sets_bank;
use netband_graph::RelationGraph;

pub use netband_graph::StrategyBank;

use crate::ArmId;

/// Default enumeration budget used by the exact oracles before they fall back to
/// greedy construction.
pub const DEFAULT_ENUMERATION_LIMIT: usize = 200_000;

/// A family of feasible combinatorial strategies.
///
/// Implementors define membership and (optionally bounded) enumeration; the
/// per-round maximisation oracles have default implementations in terms of
/// enumeration, which concrete families override with faster exact or greedy
/// algorithms. Enumeration yields a flat [`StrategyBank`], so the oracle scans
/// walk one contiguous array instead of chasing a heap pointer per candidate.
pub trait FeasibleSet {
    /// Maximum number of arms a strategy may contain (`M`).
    fn max_size(&self) -> usize;

    /// Returns `true` if `strategy` (sorted, deduplicated) belongs to the family.
    fn contains(&self, strategy: &[ArmId], graph: &RelationGraph) -> bool;

    /// Enumerates the family into a flat bank, or returns `None` when it would
    /// exceed `limit`.
    fn enumerate_bounded(&self, graph: &RelationGraph, limit: usize) -> Option<StrategyBank>;

    /// Enumerates the family with the default budget.
    fn enumerate(&self, graph: &RelationGraph) -> Option<StrategyBank> {
        self.enumerate_bounded(graph, DEFAULT_ENUMERATION_LIMIT)
    }

    /// The feasible strategy maximising `Σ_{i ∈ s} w_i`, or `None` if the family
    /// is empty.
    fn argmax_by_arm_weights(&self, weights: &[f64], graph: &RelationGraph) -> Option<Vec<ArmId>> {
        let bank = self.enumerate(graph)?;
        // `weights` is the per-arm score table; one contiguous bank scan with
        // the same row-order summation and last-max tie-breaking as the
        // `argmax_row_by` + `strategy_weight` pair it replaces.
        bank.argmax_row_sums(weights).map(|x| bank.row(x).to_vec())
    }

    /// The feasible strategy maximising `Σ_{i ∈ Y_s} w_i`, or `None` if the
    /// family is empty.
    ///
    /// The default implementation is exact whenever the family can be enumerated
    /// within the default budget; otherwise it falls back to greedy weighted
    /// max-coverage (adding the feasible arm with the largest marginal
    /// neighbourhood weight), which carries the classical `1 − 1/e` guarantee
    /// for monotone coverage objectives.
    fn argmax_by_neighborhood_weights(
        &self,
        weights: &[f64],
        graph: &RelationGraph,
    ) -> Option<Vec<ArmId>> {
        if let Some(bank) = self.enumerate(graph) {
            return argmax_neighborhood_in_bank(&bank, weights, graph);
        }
        greedy_neighborhood_argmax(self, weights, graph)
    }
}

/// Index of the bank row maximising `weight`, replicating the tie-breaking of
/// the `Iterator::max_by` scan it replaces bit-for-bit: rows are visited in
/// order, the **last** maximal row wins, and incomparable (NaN) weights
/// compare `Equal` (so the newer row wins those too).
fn argmax_row_by(bank: &StrategyBank, mut weight: impl FnMut(&[ArmId]) -> f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (x, row) in bank.iter().enumerate() {
        let w = weight(row);
        best = match best {
            Some((bx, bw))
                if bw.partial_cmp(&w).unwrap_or(std::cmp::Ordering::Equal)
                    == std::cmp::Ordering::Greater =>
            {
                Some((bx, bw))
            }
            _ => Some((x, w)),
        };
    }
    best.map(|(x, _)| x)
}

/// Flat-bank scan of the neighbourhood-weight objective: every row's `Y_s` is
/// built through one reusable mark table (no per-row sort for dense unions),
/// and summed in ascending arm order — exactly the order
/// [`neighborhood_weight`] sums in, so the floating-point summation order —
/// and hence the argmax — stays bit-identical to the nested scan it replaces.
fn argmax_neighborhood_in_bank(
    bank: &StrategyBank,
    weights: &[f64],
    graph: &RelationGraph,
) -> Option<Vec<ArmId>> {
    let mut scratch: Vec<ArmId> = Vec::new();
    let mut mark = vec![false; graph.num_vertices()];
    argmax_row_by(bank, |row| {
        neighborhood_weight_with(row, weights, graph, &mut scratch, &mut mark)
    })
    .map(|x| bank.row(x).to_vec())
}

/// [`neighborhood_weight`] with caller-provided scratch state (cleared and
/// refilled per call; no allocation once warm). The union `Y_s` is collected
/// through the mark table instead of sort+dedup; the sum still runs over the
/// ascending deduplicated union — the same order a `BTreeSet`-built
/// neighbourhood sums in — via a marked sweep of the arm range when the union
/// is dense, or a sort of the (already unique) members when it is sparse.
/// Both branches add the identical f64 sequence.
fn neighborhood_weight_with(
    strategy: &[ArmId],
    weights: &[f64],
    graph: &RelationGraph,
    scratch: &mut Vec<ArmId>,
    mark: &mut [bool],
) -> f64 {
    scratch.clear();
    for &v in strategy {
        if !mark[v] {
            mark[v] = true;
            scratch.push(v);
        }
        for &u in graph.neighbors(v) {
            if !mark[u] {
                mark[u] = true;
                scratch.push(u);
            }
        }
    }
    let sum = if scratch.len() * 4 >= mark.len() {
        let mut acc = 0.0;
        for (i, &m) in mark.iter().enumerate() {
            if m {
                acc += weights.get(i).copied().unwrap_or(0.0);
            }
        }
        acc
    } else {
        scratch.sort_unstable();
        scratch
            .iter()
            .map(|&i| weights.get(i).copied().unwrap_or(0.0))
            .sum()
    };
    for &i in scratch.iter() {
        mark[i] = false;
    }
    sum
}

/// Greedy weighted max-coverage construction used when a family is too large to
/// enumerate: repeatedly add the feasible arm with the largest marginal
/// neighbourhood weight.
fn greedy_neighborhood_argmax<F: FeasibleSet + ?Sized>(
    family: &F,
    weights: &[f64],
    graph: &RelationGraph,
) -> Option<Vec<ArmId>> {
    let n = graph.num_vertices();
    if n == 0 {
        return None;
    }
    let mut covered = vec![false; n];
    let mut chosen: Vec<ArmId> = Vec::new();
    let cap = family.max_size().max(1);
    while chosen.len() < cap {
        let mut best: Option<(ArmId, f64)> = None;
        for cand in 0..n {
            if chosen.contains(&cand) {
                continue;
            }
            let mut trial = chosen.clone();
            trial.push(cand);
            trial.sort_unstable();
            if !family.contains(&trial, graph) {
                continue;
            }
            let marginal: f64 = graph
                .closed_neighborhood(cand)
                .iter()
                .filter(|&&j| !covered[j])
                .map(|&j| weights.get(j).copied().unwrap_or(0.0))
                .sum();
            if best.map(|(_, w)| marginal > w).unwrap_or(true) {
                best = Some((cand, marginal));
            }
        }
        match best {
            Some((cand, marginal)) if marginal > 0.0 || chosen.is_empty() => {
                for &j in graph.closed_neighborhood(cand).iter() {
                    covered[j] = true;
                }
                chosen.push(cand);
            }
            _ => break,
        }
    }
    if chosen.is_empty() {
        None
    } else {
        chosen.sort_unstable();
        Some(chosen)
    }
}

/// Total weight of a strategy's component arms.
pub fn strategy_weight(strategy: &[ArmId], weights: &[f64]) -> f64 {
    strategy
        .iter()
        .map(|&i| weights.get(i).copied().unwrap_or(0.0))
        .sum()
}

/// Total weight of a strategy's observation set `Y_s`.
pub fn neighborhood_weight(strategy: &[ArmId], weights: &[f64], graph: &RelationGraph) -> f64 {
    graph
        .closed_neighborhood_of_set(strategy)
        .iter()
        .map(|&i| weights.get(i).copied().unwrap_or(0.0))
        .sum()
}

/// The built-in strategy families used throughout the workspace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrategyFamily {
    /// An explicitly enumerated feasible set (the regime of Algorithm 2).
    Explicit {
        /// The feasible strategies (normalised at construction), stored as
        /// flat [`StrategyBank`] rows so the per-round oracle scans
        /// contiguous memory.
        strategies: StrategyBank,
    },
    /// All non-empty subsets of at most `m` arms ("place up to m advertisements").
    AtMostM {
        /// Number of arms `K`.
        num_arms: usize,
        /// Cardinality cap `M`.
        m: usize,
    },
    /// All subsets of exactly `m` arms (Anantharam et al.'s setting).
    ExactlyM {
        /// Number of arms `K`.
        num_arms: usize,
        /// Exact cardinality `M`.
        m: usize,
    },
    /// All non-empty independent sets of the relation graph with at most
    /// `max_size` arms (the paper's Fig. 2 example: maximum weighted independent
    /// set).
    IndependentSets {
        /// Cardinality cap `M`.
        max_size: usize,
    },
}

impl StrategyFamily {
    /// An explicit feasible set; strategies are sorted, deduplicated, and
    /// packed into a flat [`StrategyBank`] (empty strategies are dropped).
    pub fn explicit(strategies: impl Into<StrategyBank>) -> Self {
        StrategyFamily::Explicit {
            strategies: strategies.into().into_normalized(true, |_| true),
        }
    }

    /// Subsets of at most `m` of `num_arms` arms.
    pub fn at_most_m(num_arms: usize, m: usize) -> Self {
        StrategyFamily::AtMostM {
            num_arms,
            m: m.max(1),
        }
    }

    /// Subsets of exactly `m` of `num_arms` arms.
    pub fn exactly_m(num_arms: usize, m: usize) -> Self {
        StrategyFamily::ExactlyM {
            num_arms,
            m: m.max(1),
        }
    }

    /// Independent sets of size at most `max_size`.
    pub fn independent_sets(max_size: usize) -> Self {
        StrategyFamily::IndependentSets {
            max_size: max_size.max(1),
        }
    }

    /// Number of strategies if it is cheap to compute exactly (explicit sets and
    /// the subset families), `None` for the independent-set family.
    pub fn size_hint(&self) -> Option<usize> {
        match self {
            StrategyFamily::Explicit { strategies } => Some(strategies.len()),
            StrategyFamily::AtMostM { num_arms, m } => {
                Some((1..=*m.min(num_arms)).map(|k| binomial(*num_arms, k)).sum())
            }
            StrategyFamily::ExactlyM { num_arms, m } => Some(binomial(*num_arms, *m)),
            StrategyFamily::IndependentSets { .. } => None,
        }
    }
}

impl FeasibleSet for StrategyFamily {
    fn max_size(&self) -> usize {
        match self {
            StrategyFamily::Explicit { strategies } => strategies.max_row_len(),
            StrategyFamily::AtMostM { m, .. } | StrategyFamily::ExactlyM { m, .. } => *m,
            StrategyFamily::IndependentSets { max_size } => *max_size,
        }
    }

    fn contains(&self, strategy: &[ArmId], graph: &RelationGraph) -> bool {
        if strategy.is_empty() {
            return false;
        }
        let mut sorted = strategy.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != strategy.len() {
            return false;
        }
        match self {
            StrategyFamily::Explicit { strategies } => {
                strategies.iter().any(|s| s == sorted.as_slice())
            }
            StrategyFamily::AtMostM { num_arms, m } => {
                sorted.len() <= *m && sorted.iter().all(|&i| i < *num_arms)
            }
            StrategyFamily::ExactlyM { num_arms, m } => {
                sorted.len() == *m && sorted.iter().all(|&i| i < *num_arms)
            }
            StrategyFamily::IndependentSets { max_size } => {
                sorted.len() <= *max_size
                    && sorted.iter().all(|&i| i < graph.num_vertices())
                    && graph.is_independent_set(&sorted)
            }
        }
    }

    fn enumerate_bounded(&self, graph: &RelationGraph, limit: usize) -> Option<StrategyBank> {
        match self {
            StrategyFamily::Explicit { strategies } => {
                if strategies.len() <= limit {
                    Some(strategies.clone())
                } else {
                    None
                }
            }
            StrategyFamily::AtMostM { num_arms, m } => {
                let size = self.size_hint().filter(|&s| s <= limit)?;
                let mut out = StrategyBank::with_capacity(size, 0);
                for k in 1..=*m.min(num_arms) {
                    push_combinations(*num_arms, k, &mut out);
                }
                Some(out)
            }
            StrategyFamily::ExactlyM { num_arms, m } => {
                if *m > *num_arms {
                    return Some(StrategyBank::new());
                }
                let size = self.size_hint().filter(|&s| s <= limit)?;
                let mut out = StrategyBank::with_capacity(size, size * *m);
                push_combinations(*num_arms, *m, &mut out);
                Some(out)
            }
            StrategyFamily::IndependentSets { max_size } => {
                let sets = independent_sets_bank(graph, *max_size, Some(limit + 1));
                if sets.len() > limit {
                    None
                } else {
                    Some(sets)
                }
            }
        }
    }

    fn argmax_by_arm_weights(&self, weights: &[f64], graph: &RelationGraph) -> Option<Vec<ArmId>> {
        match self {
            StrategyFamily::Explicit { strategies } => {
                // Explicit sets are scanned directly off the stored bank —
                // no enumeration copy, one contiguous walk over the per-arm
                // score table.
                strategies
                    .argmax_row_sums(weights)
                    .map(|x| strategies.row(x).to_vec())
            }
            StrategyFamily::AtMostM { num_arms, m } => {
                // Take the best arm unconditionally, then greedily add arms with
                // positive weight; this is exact because the objective is additive.
                let order = sorted_by_weight(*num_arms, weights);
                let mut chosen: Vec<ArmId> = Vec::new();
                for (rank, &i) in order.iter().enumerate() {
                    if chosen.len() >= *m {
                        break;
                    }
                    let w = weights.get(i).copied().unwrap_or(0.0);
                    if rank == 0 || w > 0.0 {
                        chosen.push(i);
                    }
                }
                if chosen.is_empty() {
                    None
                } else {
                    chosen.sort_unstable();
                    Some(chosen)
                }
            }
            StrategyFamily::ExactlyM { num_arms, m } => {
                if *m > *num_arms || *num_arms == 0 {
                    return None;
                }
                let order = sorted_by_weight(*num_arms, weights);
                let mut chosen: Vec<ArmId> = order.into_iter().take(*m).collect();
                chosen.sort_unstable();
                Some(chosen)
            }
            StrategyFamily::IndependentSets { max_size } => {
                if graph.num_vertices() == 0 {
                    return None;
                }
                // Exact on enumerable instances; greedy weighted independent set
                // otherwise.
                if let Some(bank) = self.enumerate(graph) {
                    bank.argmax_row_sums(weights).map(|x| bank.row(x).to_vec())
                } else {
                    let mut greedy = netband_graph::independent::greedy_max_weight_independent_set(
                        graph, weights,
                    );
                    greedy.truncate(*max_size);
                    if greedy.is_empty() {
                        None
                    } else {
                        Some(greedy)
                    }
                }
            }
        }
    }

    fn argmax_by_neighborhood_weights(
        &self,
        weights: &[f64],
        graph: &RelationGraph,
    ) -> Option<Vec<ArmId>> {
        // Same structure as the trait default — exact by enumeration when
        // affordable, greedy weighted max-coverage otherwise — except that an
        // explicit family scans its stored bank directly instead of cloning
        // it through `enumerate`.
        if let StrategyFamily::Explicit { strategies } = self {
            return argmax_neighborhood_in_bank(strategies, weights, graph);
        }
        if let Some(bank) = self.enumerate(graph) {
            return argmax_neighborhood_in_bank(&bank, weights, graph);
        }
        greedy_neighborhood_argmax(self, weights, graph)
    }
}

/// Arm indices `0..num_arms` sorted by decreasing weight (ties towards smaller
/// index, missing weights count as 0).
fn sorted_by_weight(num_arms: usize, weights: &[f64]) -> Vec<ArmId> {
    let mut order: Vec<ArmId> = (0..num_arms).collect();
    order.sort_by(|&a, &b| {
        let wa = weights.get(a).copied().unwrap_or(0.0);
        let wb = weights.get(b).copied().unwrap_or(0.0);
        wb.partial_cmp(&wa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Appends all `k`-subsets of `0..n` to `out`, lexicographically ordered.
fn push_combinations(n: usize, k: usize, out: &mut StrategyBank) {
    if k == 0 || k > n {
        return;
    }
    let mut current: Vec<ArmId> = (0..k).collect();
    loop {
        out.push_row(&current);
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if current[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        current[i] += 1;
        for j in (i + 1)..k {
            current[j] = current[j - 1] + 1;
        }
    }
}

/// Binomial coefficient with saturation (good enough for size hints).
fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: usize = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_graph::generators;

    fn combinations(n: usize, k: usize) -> StrategyBank {
        let mut out = StrategyBank::new();
        push_combinations(n, k, &mut out);
        out
    }

    #[test]
    fn combinations_are_lexicographic_and_complete() {
        assert_eq!(
            combinations(4, 2).to_rows(),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(combinations(3, 3).to_rows(), vec![vec![0, 1, 2]]);
        assert!(combinations(3, 0).is_empty());
        assert!(combinations(2, 3).is_empty());
        assert_eq!(combinations(5, 1).len(), 5);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(100, 2), 4950);
    }

    #[test]
    fn explicit_family_normalises_strategies() {
        let f = StrategyFamily::explicit(vec![vec![2, 0, 2], vec![], vec![1]]);
        if let StrategyFamily::Explicit { strategies } = &f {
            assert_eq!(strategies.to_rows(), vec![vec![0, 2], vec![1]]);
        } else {
            panic!("wrong variant");
        }
        assert_eq!(f.size_hint(), Some(2));
        assert_eq!(f.max_size(), 2);
    }

    #[test]
    fn at_most_m_membership_and_enumeration() {
        let g = generators::edgeless(4);
        let f = StrategyFamily::at_most_m(4, 2);
        assert!(f.contains(&[0], &g));
        assert!(f.contains(&[1, 3], &g));
        assert!(!f.contains(&[0, 1, 2], &g));
        assert!(!f.contains(&[], &g));
        assert!(!f.contains(&[0, 0], &g));
        assert!(!f.contains(&[5], &g));
        let all = f.enumerate(&g).unwrap();
        assert_eq!(all.len(), 4 + 6);
        assert_eq!(f.size_hint(), Some(10));
    }

    #[test]
    fn exactly_m_membership_and_enumeration() {
        let g = generators::edgeless(4);
        let f = StrategyFamily::exactly_m(4, 2);
        assert!(!f.contains(&[0], &g));
        assert!(f.contains(&[1, 3], &g));
        let all = f.enumerate(&g).unwrap();
        assert_eq!(all.len(), 6);
        // Infeasible cardinality yields an empty family.
        let f_big = StrategyFamily::exactly_m(2, 5);
        assert_eq!(f_big.enumerate(&g).unwrap().len(), 0);
    }

    #[test]
    fn independent_sets_family_respects_the_graph() {
        let g = generators::path(4);
        let f = StrategyFamily::independent_sets(2);
        assert!(f.contains(&[0, 2], &g));
        assert!(!f.contains(&[0, 1], &g));
        assert!(!f.contains(&[0, 1, 2], &g));
        let all = f.enumerate(&g).unwrap();
        assert_eq!(all.len(), 7); // matches Fig. 2 of the paper
        assert!(f.size_hint().is_none());
    }

    #[test]
    fn enumeration_respects_limits() {
        let g = generators::edgeless(30);
        let f = StrategyFamily::at_most_m(30, 5);
        assert!(f.enumerate_bounded(&g, 100).is_none());
        assert!(f.enumerate_bounded(&g, 1_000_000).is_some());
        let f2 = StrategyFamily::independent_sets(3);
        assert!(f2.enumerate_bounded(&g, 10).is_none());
    }

    #[test]
    fn argmax_by_arm_weights_matches_brute_force() {
        let g = generators::path(5);
        let weights = vec![0.3, 0.9, 0.1, 0.8, 0.2];
        for family in [
            StrategyFamily::at_most_m(5, 2),
            StrategyFamily::exactly_m(5, 2),
            StrategyFamily::independent_sets(2),
        ] {
            let fast = family.argmax_by_arm_weights(&weights, &g).unwrap();
            let bank = family.enumerate(&g).unwrap();
            let brute = bank
                .iter()
                .max_by(|a, b| {
                    strategy_weight(a, &weights)
                        .partial_cmp(&strategy_weight(b, &weights))
                        .unwrap()
                })
                .unwrap();
            assert!(
                (strategy_weight(&fast, &weights) - strategy_weight(brute, &weights)).abs() < 1e-12,
                "family {family:?}: {fast:?} vs {brute:?}"
            );
        }
    }

    #[test]
    fn at_most_m_argmax_skips_nonpositive_weights_but_keeps_one_arm() {
        let g = generators::edgeless(4);
        let f = StrategyFamily::at_most_m(4, 3);
        let weights = vec![-0.5, -0.1, -0.9, -0.2];
        let best = f.argmax_by_arm_weights(&weights, &g).unwrap();
        assert_eq!(best, vec![1]);
    }

    #[test]
    fn exactly_m_argmax_takes_top_m() {
        let g = generators::edgeless(5);
        let f = StrategyFamily::exactly_m(5, 3);
        let weights = vec![0.1, 0.9, 0.3, 0.8, 0.05];
        assert_eq!(
            f.argmax_by_arm_weights(&weights, &g).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn argmax_by_neighborhood_weights_is_exact_on_small_instances() {
        // Star graph: the hub's neighbourhood covers everything, so the best
        // single-arm strategy by coverage is the hub even if its own weight is 0.
        let g = generators::star(5);
        let f = StrategyFamily::at_most_m(5, 1);
        let weights = vec![0.0, 0.4, 0.4, 0.4, 0.4];
        assert_eq!(
            f.argmax_by_neighborhood_weights(&weights, &g).unwrap(),
            vec![0]
        );
    }

    #[test]
    fn greedy_neighborhood_fallback_is_feasible_and_reasonable() {
        // Too many arms to enumerate with a tiny budget: force the greedy path by
        // shrinking the limit through a wrapper family.
        struct Huge(StrategyFamily);
        impl FeasibleSet for Huge {
            fn max_size(&self) -> usize {
                self.0.max_size()
            }
            fn contains(&self, s: &[ArmId], g: &RelationGraph) -> bool {
                self.0.contains(s, g)
            }
            fn enumerate_bounded(&self, _g: &RelationGraph, _limit: usize) -> Option<StrategyBank> {
                None // pretend the family is too large to enumerate
            }
        }
        let g = generators::star(6);
        let family = Huge(StrategyFamily::at_most_m(6, 2));
        let weights = vec![0.1; 6];
        let chosen = family.argmax_by_neighborhood_weights(&weights, &g).unwrap();
        assert!(!chosen.is_empty() && chosen.len() <= 2);
        assert!(family.contains(&chosen, &g));
        // The hub should be part of any sensible coverage solution.
        assert!(chosen.contains(&0));
    }

    #[test]
    fn empty_instances_return_none() {
        let g = generators::edgeless(0);
        assert!(StrategyFamily::at_most_m(0, 2)
            .argmax_by_arm_weights(&[], &g)
            .is_none());
        assert!(StrategyFamily::independent_sets(2)
            .argmax_by_arm_weights(&[], &g)
            .is_none());
        assert!(StrategyFamily::explicit(StrategyBank::new())
            .argmax_by_neighborhood_weights(&[], &g)
            .is_none());
    }
}
