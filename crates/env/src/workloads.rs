//! Named workload presets for the applications the paper's introduction
//! motivates.
//!
//! Each preset bundles a relation graph, an arm set, and (for the combinatorial
//! scenarios) a feasible strategy family into a ready-to-run
//! [`NetworkedBandit`] instance:
//!
//! * [`online_advertising`] — "an advertiser can only place up to m
//!   advertisements on his website": a preferential-attachment audience graph,
//!   Beta-distributed click probabilities, an at-most-`M` strategy family.
//! * [`social_promotion`] — promoting products in an online social network
//!   where friends provide feedback: a community (planted-partition) graph with
//!   Bernoulli purchase decisions.
//! * [`channel_access`] — opportunistic channel access in a cognitive radio
//!   network: channels are arms, channels interfering at the same receiver are
//!   related (random geometric graph), a secondary user picks up to `M`
//!   non-conflicting channels (independent-set family).
//! * [`paper_simulation`] — the exact random workload of the paper's Section
//!   VII (Erdős–Rényi graph, uniform means).

use rand::Rng;
use serde::{Deserialize, Serialize};

use netband_graph::generators;

use crate::arms::ArmSet;
use crate::bandit::{EnvError, NetworkedBandit};
use crate::drift::DriftSchedule;
use crate::feasible::StrategyFamily;

/// A fully specified workload: environment plus (optional) feasible family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Human-readable name used in reports.
    pub name: String,
    /// The environment instance.
    pub bandit: NetworkedBandit,
    /// The feasible strategy family for combinatorial play, if the workload is
    /// combinatorial.
    pub family: Option<StrategyFamily>,
    /// The drift schedule turning the instance into a nonstationary world, if
    /// any. `None` (and a trivial schedule) mean the paper's stationary
    /// setting.
    pub drift: Option<DriftSchedule>,
}

impl Workload {
    /// Number of arms of the instance.
    pub fn num_arms(&self) -> usize {
        self.bandit.num_arms()
    }

    /// Returns the strategy family, or [`EnvError::NoStrategyFamily`] if the
    /// workload is single-play.
    ///
    /// # Errors
    ///
    /// [`EnvError::NoStrategyFamily`] when the workload declares no
    /// combinatorial strategy family.
    pub fn try_family(&self) -> Result<&StrategyFamily, EnvError> {
        self.family
            .as_ref()
            .ok_or_else(|| EnvError::NoStrategyFamily {
                workload: self.name.clone(),
            })
    }
}

/// The paper's Section VII workload: `G(K, p)` relation graph, Bernoulli arms
/// with uniform means.
pub fn paper_simulation<R: Rng + ?Sized>(num_arms: usize, edge_prob: f64, rng: &mut R) -> Workload {
    let graph = generators::erdos_renyi(num_arms, edge_prob, rng);
    let arms = ArmSet::random_bernoulli(num_arms, rng);
    Workload {
        name: format!("paper-simulation (K={num_arms}, p={edge_prob})"),
        bandit: NetworkedBandit::new(graph, arms).expect("matching sizes"),
        family: None,
        drift: None,
    }
}

/// Online advertising: place up to `slots` ads per round on an audience whose
/// sharing behaviour follows a preferential-attachment graph. Click
/// probabilities are Beta-distributed (mostly low, a few high).
pub fn online_advertising<R: Rng + ?Sized>(num_ads: usize, slots: usize, rng: &mut R) -> Workload {
    let graph = generators::barabasi_albert(num_ads, 2, rng);
    // Click-through rates: mean ≈ 0.15 with a heavy right tail.
    let arms: ArmSet = (0..num_ads)
        .map(|_| {
            let mean: f64 = (0.02 + 0.3 * rng.gen::<f64>().powi(2)).clamp(0.01, 0.95);
            crate::distributions::Distribution::beta(mean * 10.0, (1.0 - mean) * 10.0)
        })
        .collect();
    Workload {
        name: format!("online-advertising (ads={num_ads}, slots={slots})"),
        bandit: NetworkedBandit::new(graph, arms).expect("matching sizes"),
        family: Some(StrategyFamily::at_most_m(num_ads, slots)),
        drift: None,
    }
}

/// Social promotion: pick one user to promote to per round; her friends see the
/// promotion too. Users form communities; purchase probabilities are Bernoulli.
pub fn social_promotion<R: Rng + ?Sized>(
    num_users: usize,
    communities: usize,
    rng: &mut R,
) -> Workload {
    let graph = generators::planted_partition(num_users, communities.max(1), 0.3, 0.02, rng);
    let arms = ArmSet::random_bernoulli(num_users, rng);
    Workload {
        name: format!("social-promotion (users={num_users}, communities={communities})"),
        bandit: NetworkedBandit::new(graph, arms).expect("matching sizes"),
        family: None,
        drift: None,
    }
}

/// Opportunistic channel access: `num_channels` channels whose geographic
/// interference pattern is a random geometric graph; a secondary user may
/// transmit on up to `max_channels` mutually non-interfering channels per slot
/// (an independent set of the interference graph). Channel availability is
/// Bernoulli.
pub fn channel_access<R: Rng + ?Sized>(
    num_channels: usize,
    max_channels: usize,
    interference_radius: f64,
    rng: &mut R,
) -> Workload {
    let graph = generators::random_geometric(num_channels, interference_radius, rng);
    let arms = ArmSet::random_bernoulli(num_channels, rng);
    Workload {
        name: format!(
            "channel-access (channels={num_channels}, max={max_channels}, r={interference_radius})"
        ),
        bandit: NetworkedBandit::new(graph, arms).expect("matching sizes"),
        family: Some(StrategyFamily::independent_sets(max_channels)),
        drift: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasible::FeasibleSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_simulation_matches_the_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = paper_simulation(30, 0.3, &mut rng);
        assert_eq!(w.num_arms(), 30);
        assert!(w.family.is_none());
        assert!(w.name.contains("K=30"));
        assert!(w.bandit.means().iter().all(|&m| (0.0..=1.0).contains(&m)));
    }

    #[test]
    fn single_play_workload_reports_missing_family_as_an_error() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = paper_simulation(5, 0.3, &mut rng);
        match w.try_family() {
            Err(EnvError::NoStrategyFamily { workload }) => {
                assert!(workload.contains("paper-simulation"))
            }
            other => panic!("expected NoStrategyFamily, got {other:?}"),
        }
    }

    #[test]
    fn online_advertising_is_combinatorial_and_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = online_advertising(25, 3, &mut rng);
        assert_eq!(w.num_arms(), 25);
        assert_eq!(w.try_family().unwrap().max_size(), 3);
        // Click probabilities are valid means.
        assert!(w.bandit.means().iter().all(|&m| m > 0.0 && m < 1.0));
        // The audience graph is connected (BA construction).
        assert!(w.bandit.graph().is_connected());
    }

    #[test]
    fn social_promotion_has_community_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = social_promotion(60, 3, &mut rng);
        assert_eq!(w.num_arms(), 60);
        assert!(w.family.is_none());
        // Communities make the graph reasonably dense inside, sparse outside.
        let density = w.bandit.graph().density();
        assert!(density > 0.05 && density < 0.5, "density {density}");
    }

    #[test]
    fn channel_access_strategies_are_independent_sets() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = channel_access(20, 3, 0.3, &mut rng);
        let family = w.try_family().unwrap().clone();
        let strategies = family.enumerate(w.bandit.graph()).unwrap();
        assert!(!strategies.is_empty());
        for s in &strategies {
            assert!(w.bandit.graph().is_independent_set(s));
            assert!(s.len() <= 3);
        }
    }

    #[test]
    fn workloads_are_deterministic_under_seed() {
        let a = online_advertising(15, 2, &mut StdRng::seed_from_u64(9));
        let b = online_advertising(15, 2, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    /// Every preset is a pure function of its RNG: the same seed must
    /// reproduce the generated workload (graph, arm distributions, family)
    /// exactly, and a different seed must actually change the instance.
    #[test]
    fn all_four_presets_are_seed_stable() {
        fn check<F: Fn(&mut StdRng) -> Workload>(name: &str, build: F) {
            let a = build(&mut StdRng::seed_from_u64(11));
            let b = build(&mut StdRng::seed_from_u64(11));
            assert_eq!(a, b, "{name}: same seed must reproduce the workload");
            let c = build(&mut StdRng::seed_from_u64(12));
            assert_ne!(a, c, "{name}: a fresh seed must vary the workload");
        }
        check("paper_simulation", |rng| paper_simulation(20, 0.3, rng));
        check("online_advertising", |rng| online_advertising(20, 3, rng));
        check("social_promotion", |rng| social_promotion(24, 3, rng));
        check("channel_access", |rng| channel_access(20, 3, 0.3, rng));
    }

    /// The combinatorial presets must come with a non-empty feasible family
    /// whose oracles return cardinality-compliant members of the family —
    /// otherwise a hosted DFL-CSO/CSR tenant would panic on its first decide.
    #[test]
    fn combinatorial_preset_oracles_are_feasible_and_cardinality_compliant() {
        let mut rng = StdRng::seed_from_u64(21);
        for workload in [
            online_advertising(14, 3, &mut rng),
            channel_access(16, 3, 0.35, &mut rng),
        ] {
            let family = workload.try_family().unwrap();
            let graph = workload.bandit.graph();
            let strategies = family
                .enumerate(graph)
                .unwrap_or_else(|| panic!("{}: family not enumerable", workload.name));
            assert!(!strategies.is_empty(), "{}: empty family", workload.name);
            for s in &strategies {
                assert!(!s.is_empty(), "{}: empty strategy", workload.name);
                assert!(
                    s.len() <= family.max_size(),
                    "{}: cardinality {} exceeds M={}",
                    workload.name,
                    s.len(),
                    family.max_size()
                );
                assert!(family.contains(s, graph), "{}: {s:?}", workload.name);
            }
            // Both per-round oracles return feasible, compliant strategies.
            let weights: Vec<f64> = (0..workload.num_arms()).map(|i| 1.0 + i as f64).collect();
            for oracle_pick in [
                family.argmax_by_arm_weights(&weights, graph),
                family.argmax_by_neighborhood_weights(&weights, graph),
            ] {
                let pick = oracle_pick.expect("non-empty family has an argmax");
                assert!(pick.len() <= family.max_size(), "{}", workload.name);
                assert!(family.contains(&pick, graph), "{}: {pick:?}", workload.name);
            }
        }
    }

    /// The single-play presets produce instances a policy can run on from
    /// round one: valid means and a usable (possibly lazily rebuilt) CSR view.
    #[test]
    fn single_play_presets_produce_usable_instances() {
        let mut rng = StdRng::seed_from_u64(33);
        for workload in [
            paper_simulation(18, 0.3, &mut rng),
            social_promotion(18, 3, &mut rng),
        ] {
            assert!(workload.family.is_none(), "{}", workload.name);
            assert_eq!(workload.num_arms(), 18, "{}", workload.name);
            assert!(
                workload
                    .bandit
                    .means()
                    .iter()
                    .all(|&m| (0.0..=1.0).contains(&m)),
                "{}: invalid means",
                workload.name
            );
            let mut pull_rng = StdRng::seed_from_u64(1);
            let feedback = workload.bandit.pull_single(0, &mut pull_rng);
            assert!(
                !feedback.observations.is_empty(),
                "{}: a pull must reveal at least the pulled arm",
                workload.name
            );
        }
    }
}
