//! Multi-replication averaging, optionally in parallel.
//!
//! The paper's curves are expected regrets, i.e. averages over independent
//! replications of the simulation. [`replicate`] runs a caller-supplied closure
//! once per replication (each with its own seed), and aggregates the traces into
//! point-wise means and standard deviations. Replications are embarrassingly
//! parallel, so when `parallel` is enabled they are spread over
//! `std::thread::scope` worker threads.

use std::sync::Mutex;
use std::thread;

use serde::{Deserialize, Serialize};

use crate::runner::RunResult;
use crate::stats::{mean_series, std_dev, std_series};

/// Configuration of a replication batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// Number of independent replications.
    pub replications: usize,
    /// Base seed; replication `r` receives seed `base_seed + r`.
    pub base_seed: u64,
    /// Run replications on multiple threads.
    pub parallel: bool,
    /// Number of worker threads when `parallel` (0 = one per available core,
    /// capped at 8).
    pub threads: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            replications: 20,
            base_seed: 0,
            parallel: true,
            threads: 0,
        }
    }
}

impl ReplicationConfig {
    /// A serial configuration with the given number of replications.
    pub fn serial(replications: usize, base_seed: u64) -> Self {
        ReplicationConfig {
            replications,
            base_seed,
            parallel: false,
            threads: 1,
        }
    }

    /// A parallel configuration with the given number of replications.
    pub fn parallel(replications: usize, base_seed: u64) -> Self {
        ReplicationConfig {
            replications,
            base_seed,
            parallel: true,
            threads: 0,
        }
    }

    fn worker_count(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let requested = if self.threads == 0 {
            available.min(8)
        } else {
            self.threads
        };
        requested.clamp(1, self.replications.max(1))
    }
}

/// Point-wise aggregation of the regret traces of many replications of the same
/// policy.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AveragedRun {
    /// Name of the policy.
    pub policy: String,
    /// Number of replications aggregated.
    pub replications: usize,
    /// Horizon of each replication.
    pub horizon: usize,
    /// Mean (over replications) of the time-averaged realised regret `R_t / t`
    /// at every `t` — the paper's "expected regret" curves.
    pub expected_regret: Vec<f64>,
    /// Mean cumulative realised regret `R_t` at every `t` — the paper's
    /// "accumulated regret" curves.
    pub accumulated_regret: Vec<f64>,
    /// Point-wise standard deviation of the cumulative regret.
    pub accumulated_std: Vec<f64>,
    /// Mean of the time-averaged *pseudo*-regret at every `t`.
    pub expected_pseudo_regret: Vec<f64>,
    /// Final cumulative regret of every replication (for confidence intervals).
    pub final_regrets: Vec<f64>,
    /// Mean total reward per replication.
    pub mean_total_reward: f64,
}

impl AveragedRun {
    /// Mean of the final cumulative regrets.
    pub fn final_regret_mean(&self) -> f64 {
        crate::stats::mean(&self.final_regrets)
    }

    /// Sample standard deviation of the final cumulative regrets.
    pub fn final_regret_std(&self) -> f64 {
        std_dev(&self.final_regrets)
    }

    /// The final value of the expected-regret curve (`R_n / n`).
    pub fn final_expected_regret(&self) -> f64 {
        self.expected_regret.last().copied().unwrap_or(0.0)
    }
}

/// Aggregates a set of per-replication results into an [`AveragedRun`].
///
/// # Panics
///
/// Panics if `results` is empty or the runs have different horizons.
pub fn aggregate(results: &[RunResult]) -> AveragedRun {
    assert!(!results.is_empty(), "cannot aggregate zero replications");
    let horizon = results[0].horizon;
    assert!(
        results.iter().all(|r| r.horizon == horizon),
        "all replications must share the same horizon"
    );
    let time_avg: Vec<Vec<f64>> = results.iter().map(|r| r.trace.time_averaged()).collect();
    let cumulative: Vec<Vec<f64>> = results.iter().map(|r| r.trace.cumulative()).collect();
    let pseudo_avg: Vec<Vec<f64>> = results
        .iter()
        .map(|r| r.trace.time_averaged_pseudo())
        .collect();
    AveragedRun {
        policy: results[0].policy.clone(),
        replications: results.len(),
        horizon,
        expected_regret: mean_series(&time_avg),
        accumulated_regret: mean_series(&cumulative),
        accumulated_std: std_series(&cumulative),
        expected_pseudo_regret: mean_series(&pseudo_avg),
        final_regrets: results.iter().map(|r| r.total_regret()).collect(),
        mean_total_reward: crate::stats::mean(
            &results.iter().map(|r| r.total_reward).collect::<Vec<_>>(),
        ),
    }
}

/// Runs `config.replications` independent replications of `run_one` and
/// aggregates them.
///
/// `run_one(replication_index, seed)` must be deterministic given its arguments;
/// seeds are `base_seed + replication_index`.
///
/// # Panics
///
/// Panics if `config.replications == 0`, if a worker thread panics, or if the
/// replications disagree on the horizon.
pub fn replicate<F>(config: &ReplicationConfig, run_one: F) -> AveragedRun
where
    F: Fn(usize, u64) -> RunResult + Sync,
{
    assert!(
        config.replications > 0,
        "at least one replication is required"
    );
    let results: Vec<RunResult> = if config.worker_count() <= 1 {
        (0..config.replications)
            .map(|r| run_one(r, config.base_seed + r as u64))
            .collect()
    } else {
        let slots: Mutex<Vec<Option<RunResult>>> = Mutex::new(vec![None; config.replications]);
        let next: Mutex<usize> = Mutex::new(0);
        let workers = config.worker_count();
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let r = {
                        let mut guard = next.lock().expect("replication queue poisoned");
                        if *guard >= config.replications {
                            break;
                        }
                        let r = *guard;
                        *guard += 1;
                        r
                    };
                    let result = run_one(r, config.base_seed + r as u64);
                    slots.lock().expect("replication slots poisoned")[r] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .expect("replication slots poisoned")
            .into_iter()
            .map(|slot| slot.expect("every replication slot must be filled"))
            .collect()
    };
    aggregate(&results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_single, SingleScenario};
    use netband_core::DflSso;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_bandit(seed: u64) -> NetworkedBandit {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::erdos_renyi(10, 0.4, &mut rng);
        let arms = ArmSet::random_bernoulli(10, &mut rng);
        NetworkedBandit::new(graph, arms).unwrap()
    }

    fn one_run(seed: u64, horizon: usize) -> RunResult {
        let bandit = make_bandit(42);
        let mut policy = DflSso::new(bandit.graph().clone());
        run_single(
            &bandit,
            &mut policy,
            SingleScenario::SideObservation,
            horizon,
            seed,
        )
    }

    #[test]
    fn aggregate_produces_consistent_shapes() {
        let results: Vec<RunResult> = (0..4).map(|r| one_run(r, 100)).collect();
        let avg = aggregate(&results);
        assert_eq!(avg.replications, 4);
        assert_eq!(avg.horizon, 100);
        assert_eq!(avg.expected_regret.len(), 100);
        assert_eq!(avg.accumulated_regret.len(), 100);
        assert_eq!(avg.accumulated_std.len(), 100);
        assert_eq!(avg.final_regrets.len(), 4);
        assert_eq!(avg.policy, "DFL-SSO");
        // The last accumulated value equals the mean of the final regrets.
        assert!(
            (avg.accumulated_regret[99] - avg.final_regret_mean()).abs() < 1e-9,
            "{} vs {}",
            avg.accumulated_regret[99],
            avg.final_regret_mean()
        );
        assert!((avg.final_expected_regret() - avg.final_regret_mean() / 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero replications")]
    fn aggregate_rejects_empty_input() {
        aggregate(&[]);
    }

    #[test]
    #[should_panic(expected = "same horizon")]
    fn aggregate_rejects_mixed_horizons() {
        let a = one_run(0, 50);
        let b = one_run(1, 60);
        aggregate(&[a, b]);
    }

    #[test]
    fn serial_and_parallel_replication_agree() {
        let serial_cfg = ReplicationConfig::serial(6, 100);
        let parallel_cfg = ReplicationConfig {
            replications: 6,
            base_seed: 100,
            parallel: true,
            threads: 3,
        };
        let serial = replicate(&serial_cfg, |_, seed| one_run(seed, 80));
        let parallel = replicate(&parallel_cfg, |_, seed| one_run(seed, 80));
        assert_eq!(serial, parallel);
    }

    /// `ReplicationConfig::parallel` must be a pure performance knob: for a
    /// fixed base seed, every worker-count choice — and every rerun, i.e.
    /// every thread interleaving the scheduler happens to produce — yields an
    /// `AveragedRun` identical to the serial aggregate. Replication results
    /// are collected into per-index slots, so aggregation order is
    /// deterministic no matter which worker finishes first.
    #[test]
    fn parallel_aggregates_are_interleaving_independent() {
        let reference = replicate(&ReplicationConfig::serial(8, 400), |_, seed| {
            one_run(seed, 60)
        });
        for threads in [2, 3, 5, 8] {
            let cfg = ReplicationConfig {
                replications: 8,
                base_seed: 400,
                parallel: true,
                threads,
            };
            // Several reruns per worker count: each run races the workers
            // differently, none may change a bit of the aggregate.
            for attempt in 0..3 {
                let parallel = replicate(&cfg, |_, seed| one_run(seed, 60));
                assert_eq!(
                    reference, parallel,
                    "parallel aggregate diverged (threads={threads}, attempt={attempt})"
                );
            }
        }
        // The named constructor (auto-sized worker pool) agrees too.
        let auto = replicate(&ReplicationConfig::parallel(8, 400), |_, seed| {
            one_run(seed, 60)
        });
        assert_eq!(reference, auto);
    }

    #[test]
    fn replication_seeds_differ() {
        let cfg = ReplicationConfig::serial(3, 7);
        let seen: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
        let _ = replicate(&cfg, |r, seed| {
            seen.lock().unwrap().push((r, seed));
            one_run(seed, 10)
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 7), (1, 8), (2, 9)]);
    }

    #[test]
    fn worker_count_is_sane() {
        assert_eq!(ReplicationConfig::serial(10, 0).worker_count(), 1);
        let par = ReplicationConfig {
            replications: 2,
            base_seed: 0,
            parallel: true,
            threads: 16,
        };
        assert!(par.worker_count() <= 2);
        let default_cfg = ReplicationConfig::default();
        assert!(default_cfg.worker_count() >= 1);
    }
}
