//! Regret accounting for a single simulation run.
//!
//! The paper defines regret (Equations 1–4) as the cumulative difference between
//! the *expected reward of the optimal strategy* and the *realised reward* of the
//! played strategy. This module tracks that quantity per round, along with the
//! pseudo-regret (optimal mean minus the mean of the played strategy), which has
//! the same expectation but lower variance and is what the zero-regret property
//! `R_n / n → 0` is usually checked against.

use serde::{Deserialize, Serialize};

/// Per-round regret record of one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegretTrace {
    /// Realised per-round regret: `optimal mean − realised reward` (Equations
    /// 1–4 of the paper, per round). Can be negative in lucky rounds.
    realised: Vec<f64>,
    /// Pseudo per-round regret: `optimal mean − mean of the played strategy`.
    /// Always ≥ 0 when the optimum is computed over the same feasible set.
    pseudo: Vec<f64>,
}

impl RegretTrace {
    /// An empty trace with capacity for `horizon` rounds.
    pub fn with_capacity(horizon: usize) -> Self {
        RegretTrace {
            realised: Vec::with_capacity(horizon),
            pseudo: Vec::with_capacity(horizon),
        }
    }

    /// Reassembles a trace from its per-round components (the inverse of
    /// [`RegretTrace::realised`] / [`RegretTrace::pseudo`]), used when
    /// restoring a persisted run.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn from_parts(realised: Vec<f64>, pseudo: Vec<f64>) -> Self {
        assert_eq!(
            realised.len(),
            pseudo.len(),
            "realised/pseudo per-round lengths must match"
        );
        RegretTrace { realised, pseudo }
    }

    /// Records one round.
    pub fn record(&mut self, realised: f64, pseudo: f64) {
        self.realised.push(realised);
        self.pseudo.push(pseudo);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.realised.len()
    }

    /// Returns `true` if no round has been recorded.
    pub fn is_empty(&self) -> bool {
        self.realised.is_empty()
    }

    /// Per-round realised regret.
    pub fn realised(&self) -> &[f64] {
        &self.realised
    }

    /// Per-round pseudo-regret.
    pub fn pseudo(&self) -> &[f64] {
        &self.pseudo
    }

    /// Cumulative realised regret `R_t` for every `t` (the paper's accumulated
    /// regret, Fig. 3(b)).
    pub fn cumulative(&self) -> Vec<f64> {
        cumulative_sum(&self.realised)
    }

    /// Cumulative pseudo-regret for every `t`.
    pub fn cumulative_pseudo(&self) -> Vec<f64> {
        cumulative_sum(&self.pseudo)
    }

    /// Time-averaged realised regret `R_t / t` for every `t` (the paper's
    /// "expected regret" plots, Figs. 3(a), 4, 5, 6).
    pub fn time_averaged(&self) -> Vec<f64> {
        time_average(&self.realised)
    }

    /// Time-averaged pseudo-regret for every `t`.
    pub fn time_averaged_pseudo(&self) -> Vec<f64> {
        time_average(&self.pseudo)
    }

    /// Final cumulative realised regret `R_n`.
    pub fn total(&self) -> f64 {
        self.realised.iter().sum()
    }

    /// Final cumulative pseudo-regret.
    pub fn total_pseudo(&self) -> f64 {
        self.pseudo.iter().sum()
    }

    /// Final time-averaged realised regret `R_n / n` (0 for an empty trace).
    pub fn final_average(&self) -> f64 {
        if self.realised.is_empty() {
            0.0
        } else {
            self.total() / self.realised.len() as f64
        }
    }
}

fn cumulative_sum(xs: &[f64]) -> Vec<f64> {
    let mut total = 0.0;
    xs.iter()
        .map(|&x| {
            total += x;
            total
        })
        .collect()
}

fn time_average(xs: &[f64]) -> Vec<f64> {
    let mut total = 0.0;
    xs.iter()
        .enumerate()
        .map(|(i, &x)| {
            total += x;
            total / (i + 1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_well_behaved() {
        let trace = RegretTrace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.len(), 0);
        assert_eq!(trace.total(), 0.0);
        assert_eq!(trace.final_average(), 0.0);
        assert!(trace.cumulative().is_empty());
        assert!(trace.time_averaged().is_empty());
    }

    #[test]
    fn cumulative_and_average_match_hand_computation() {
        let mut trace = RegretTrace::with_capacity(4);
        trace.record(1.0, 0.5);
        trace.record(0.0, 0.5);
        trace.record(-0.5, 0.0);
        trace.record(0.5, 0.0);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.cumulative(), vec![1.0, 1.0, 0.5, 1.0]);
        assert_eq!(trace.cumulative_pseudo(), vec![0.5, 1.0, 1.0, 1.0]);
        assert_eq!(trace.time_averaged()[3], 0.25);
        assert_eq!(trace.time_averaged_pseudo()[1], 0.5);
        assert_eq!(trace.total(), 1.0);
        assert_eq!(trace.total_pseudo(), 1.0);
        assert_eq!(trace.final_average(), 0.25);
    }

    #[test]
    fn from_parts_is_the_inverse_of_the_accessors() {
        let mut trace = RegretTrace::default();
        trace.record(0.25, 0.5);
        trace.record(-0.125, 0.0);
        let rebuilt = RegretTrace::from_parts(trace.realised().to_vec(), trace.pseudo().to_vec());
        assert_eq!(rebuilt, trace);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn from_parts_rejects_mismatched_lengths() {
        let _ = RegretTrace::from_parts(vec![0.0], vec![]);
    }

    #[test]
    fn pseudo_and_realised_are_tracked_independently() {
        let mut trace = RegretTrace::default();
        trace.record(0.2, 0.7);
        assert_eq!(trace.realised(), &[0.2]);
        assert_eq!(trace.pseudo(), &[0.7]);
    }
}
