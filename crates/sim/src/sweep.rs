//! Generic parameter sweeps.
//!
//! The ablations of the experiment harness all share one shape: run the same
//! replicated experiment at every point of a parameter grid and tabulate a few
//! summary numbers per point. [`Sweep`] captures that shape once, so new
//! studies (density sweeps, horizon sweeps, arm-count sweeps, …) only supply a
//! closure from the parameter to an [`AveragedRun`] (or any summary type).

use serde::{Deserialize, Serialize};

use crate::replicate::AveragedRun;

/// One point of a sweep: the parameter value and the summaries produced there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint<P, S> {
    /// The swept parameter value.
    pub parameter: P,
    /// The summary computed at this value.
    pub summary: S,
}

/// The result of sweeping a closure over a list of parameter values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sweep<P, S> {
    /// A short label for reports (e.g. `"edge probability"`).
    pub parameter_name: String,
    /// One entry per parameter value, in input order.
    pub points: Vec<SweepPoint<P, S>>,
}

impl<P, S> Sweep<P, S> {
    /// Runs `evaluate` at every parameter value.
    pub fn run(
        parameter_name: impl Into<String>,
        parameters: impl IntoIterator<Item = P>,
        mut evaluate: impl FnMut(&P) -> S,
    ) -> Self {
        let points = parameters
            .into_iter()
            .map(|parameter| {
                let summary = evaluate(&parameter);
                SweepPoint { parameter, summary }
            })
            .collect();
        Sweep {
            parameter_name: parameter_name.into(),
            points,
        }
    }

    /// Number of points in the sweep.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maps every summary to a new type, keeping the parameters.
    pub fn map_summaries<T>(self, mut f: impl FnMut(S) -> T) -> Sweep<P, T> {
        Sweep {
            parameter_name: self.parameter_name,
            points: self
                .points
                .into_iter()
                .map(|p| SweepPoint {
                    parameter: p.parameter,
                    summary: f(p.summary),
                })
                .collect(),
        }
    }

    /// The parameter of the point whose summary minimises `key`.
    pub fn argmin_by(&self, mut key: impl FnMut(&S) -> f64) -> Option<&P> {
        self.points
            .iter()
            .min_by(|a, b| {
                key(&a.summary)
                    .partial_cmp(&key(&b.summary))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|p| &p.parameter)
    }
}

impl<P: std::fmt::Display> Sweep<P, AveragedRun> {
    /// Renders a sweep of averaged runs as a fixed-width table of final
    /// accumulated and expected regret.
    pub fn regret_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.parameter.to_string(),
                    p.summary.policy.clone(),
                    format!("{:.2}", p.summary.final_regret_mean()),
                    format!("{:.2}", p.summary.final_regret_std()),
                    format!("{:.5}", p.summary.final_expected_regret()),
                ]
            })
            .collect();
        crate::export::format_table(
            &[
                &self.parameter_name,
                "policy",
                "R_n mean",
                "R_n std",
                "R_n/n",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicate::{replicate, ReplicationConfig};
    use crate::runner::{run_single, SingleScenario};
    use netband_core::DflSso;
    use netband_env::{ArmSet, NetworkedBandit};
    use netband_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sweep_runs_in_order_and_maps() {
        let sweep = Sweep::run("k", [1usize, 2, 3], |&k| k * 10);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep.points[1].parameter, 2);
        assert_eq!(sweep.points[1].summary, 20);
        let doubled = sweep.map_summaries(|s| s as f64 * 2.0);
        assert_eq!(doubled.points[2].summary, 60.0);
        assert!(!doubled.is_empty());
    }

    #[test]
    fn argmin_finds_the_best_parameter() {
        let sweep = Sweep::run("x", [-2.0f64, 0.5, 3.0], |&x| (x - 0.4f64).abs());
        assert_eq!(sweep.argmin_by(|&d| d), Some(&0.5));
        let empty: Sweep<f64, f64> = Sweep::run("x", Vec::<f64>::new(), |&x| x);
        assert_eq!(empty.argmin_by(|&d| d), None);
    }

    #[test]
    fn regret_table_over_densities_renders() {
        let sweep = Sweep::run("edge probability", [0.1f64, 0.8], |&p| {
            let mut rng = StdRng::seed_from_u64(1);
            let graph = generators::erdos_renyi(10, p, &mut rng);
            let arms = ArmSet::random_bernoulli(10, &mut rng);
            let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
            replicate(&ReplicationConfig::serial(2, 5), |_, seed| {
                let mut policy = DflSso::new(graph.clone());
                run_single(
                    &bandit,
                    &mut policy,
                    SingleScenario::SideObservation,
                    200,
                    seed,
                )
            })
        });
        let table = sweep.regret_table();
        assert!(table.contains("edge probability"));
        assert!(table.contains("DFL-SSO"));
        assert_eq!(table.lines().count(), 4);
        // The denser graph should not have (much) more regret; just check the
        // argmin machinery runs on real summaries.
        assert!(sweep.argmin_by(|run| run.final_regret_mean()).is_some());
    }
}
