//! Export helpers: CSV serialisation and fixed-width console tables.
//!
//! The experiment binaries print both a human-readable table (for the terminal)
//! and CSV (for regenerating the paper's figures with any plotting tool).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Serialises named, equally long columns as CSV with a header row.
///
/// Shorter columns are padded with empty cells so ragged data never silently
/// truncates longer columns.
pub fn columns_to_csv(columns: &[(&str, &[f64])]) -> String {
    let mut out = String::new();
    let header: Vec<&str> = columns.iter().map(|(name, _)| *name).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    let rows = columns.iter().map(|(_, col)| col.len()).max().unwrap_or(0);
    for row in 0..rows {
        let cells: Vec<String> = columns
            .iter()
            .map(|(_, col)| col.get(row).map(|v| format!("{v}")).unwrap_or_default())
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Writes [`columns_to_csv`] output to a file, creating parent directories.
///
/// # Errors
///
/// Propagates any I/O error from creating directories or writing the file.
pub fn write_csv(path: &Path, columns: &[(&str, &[f64])]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, columns_to_csv(columns))
}

/// Formats rows as a fixed-width text table with a header.
///
/// Every row is padded/truncated to the number of header cells.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (width, cell) in widths.iter_mut().zip(row) {
            *width = (*width).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        let mut parts = Vec::with_capacity(cols);
        for (c, width) in widths.iter().enumerate() {
            let cell = cells.get(c).cloned().unwrap_or_default();
            parts.push(format!("{cell:width$}"));
        }
        let _ = writeln!(out, "| {} |", parts.join(" | "));
    };
    write_row(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let _ = writeln!(out, "|-{}-|", sep.join("-|-"));
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_header_and_rows() {
        let csv = columns_to_csv(&[("t", &[1.0, 2.0]), ("regret", &[0.5, 0.25])]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "t,regret");
        assert_eq!(lines[1], "1,0.5");
        assert_eq!(lines[2], "2,0.25");
    }

    #[test]
    fn csv_pads_ragged_columns() {
        let csv = columns_to_csv(&[("a", &[1.0]), ("b", &[2.0, 3.0])]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[2], ",3");
    }

    #[test]
    fn csv_of_empty_columns_is_just_a_header() {
        let csv = columns_to_csv(&[("a", &[]), ("b", &[])]);
        assert_eq!(csv.trim(), "a,b");
        let empty = columns_to_csv(&[]);
        assert_eq!(empty.trim(), "");
    }

    #[test]
    fn write_csv_creates_directories_and_roundtrips() {
        let dir = std::env::temp_dir().join("netband_export_test");
        let path = dir.join("nested").join("out.csv");
        write_csv(&path, &[("x", &[1.0, 2.0])]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x\n1\n2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_is_aligned() {
        let table = format_table(
            &["policy", "regret"],
            &[
                vec!["MOSS".to_owned(), "1234.5".to_owned()],
                vec!["DFL-SSO".to_owned(), "56.7".to_owned()],
            ],
        );
        let lines: Vec<&str> = table.trim().lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("policy"));
        assert!(lines[2].contains("MOSS"));
        // All rows have the same width.
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    fn table_handles_missing_cells() {
        let table = format_table(&["a", "b"], &[vec!["only-a".to_owned()]]);
        assert!(table.contains("only-a"));
    }
}
