//! Small statistics helpers used by the replication layer and the experiment
//! reports.
//!
//! Aggregations here run over thousands of replications × rounds, where naive
//! `iter().sum()` accumulation drifts: once the running total grows large,
//! small per-round contributions fall below its units in the last place and
//! vanish. [`mean`] therefore uses Neumaier-compensated summation and
//! [`std_dev`] the single-pass Welford recurrence, both of which keep the
//! error bounded independently of the summation order and magnitude spread.

/// Neumaier-compensated (improved Kahan) sum: tracks the low-order bits the
/// running total discards and folds them back in at the end, handling terms
/// both smaller and larger than the current total.
fn compensated_sum(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut compensation = 0.0;
    for x in xs {
        let t = sum + x;
        if sum.abs() >= x.abs() {
            compensation += (sum - t) + x;
        } else {
            compensation += (x - t) + sum;
        }
        sum = t;
    }
    sum + compensation
}

/// Arithmetic mean (0 for an empty slice), via compensated summation.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        compensated_sum(xs.iter().copied()) / xs.len() as f64
    }
}

/// Sample standard deviation (`n − 1` denominator; 0 for fewer than two
/// points), via Welford's single-pass recurrence — immune to the catastrophic
/// cancellation of the naive `E[x²] − E[x]²` form on data with a large common
/// offset.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let delta = x - mean;
        mean += delta / (i + 1) as f64;
        m2 += delta * (x - mean);
    }
    (m2 / (xs.len() - 1) as f64).sqrt()
}

/// Standard error of the mean.
pub fn sem(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        std_dev(xs) / (xs.len() as f64).sqrt()
    }
}

/// A symmetric 95% normal-approximation confidence interval `(lo, hi)` around
/// the mean.
pub fn confidence_interval95(xs: &[f64]) -> (f64, f64) {
    let m = mean(xs);
    let half = 1.96 * sem(xs);
    (m - half, m + half)
}

/// Point-wise mean of several equally long series.
///
/// # Panics
///
/// Panics if the series have different lengths.
pub fn mean_series(series: &[Vec<f64>]) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let len = series[0].len();
    assert!(
        series.iter().all(|s| s.len() == len),
        "all series must have the same length"
    );
    (0..len)
        .map(|i| compensated_sum(series.iter().map(|s| s[i])) / series.len() as f64)
        .collect()
}

/// Point-wise sample standard deviation of several equally long series.
///
/// # Panics
///
/// Panics if the series have different lengths.
pub fn std_series(series: &[Vec<f64>]) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let len = series[0].len();
    assert!(
        series.iter().all(|s| s.len() == len),
        "all series must have the same length"
    );
    (0..len)
        .map(|i| {
            let column: Vec<f64> = series.iter().map(|s| s[i]).collect();
            std_dev(&column)
        })
        .collect()
}

/// Picks `points` approximately evenly spaced samples `(index, value)` from a
/// series (always including the last point). Used to print long regret curves
/// as compact tables.
pub fn downsample(series: &[f64], points: usize) -> Vec<(usize, f64)> {
    if series.is_empty() || points == 0 {
        return Vec::new();
    }
    let points = points.min(series.len());
    let mut out = Vec::with_capacity(points);
    for p in 1..=points {
        let idx = (p * series.len()) / points - 1;
        out.push((idx, series[idx]));
    }
    out.dedup_by_key(|&mut (i, _)| i);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935299395).abs() < 1e-12);
        assert!(sem(&xs) > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(sem(&[]), 0.0);
        let (lo, hi) = confidence_interval95(&[]);
        assert_eq!((lo, hi), (0.0, 0.0));
    }

    #[test]
    fn confidence_interval_brackets_the_mean() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let (lo, hi) = confidence_interval95(&xs);
        assert!(lo < 3.0 && 3.0 < hi);
    }

    #[test]
    fn mean_and_std_series_are_pointwise() {
        let series = vec![vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]];
        assert_eq!(mean_series(&series), vec![2.0, 2.0, 2.0]);
        let stds = std_series(&series);
        assert!((stds[0] - std_dev(&[1.0, 3.0])).abs() < 1e-12);
        assert!(stds[1].abs() < 1e-12);
        assert!(mean_series(&[]).is_empty());
        assert!(std_series(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mean_series_rejects_ragged_input() {
        mean_series(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn mean_survives_pathological_magnitude_spread() {
        // Naive left-to-right accumulation loses the three 1.0s entirely: they
        // are absorbed by the 1e16 before it cancels, yielding 1.0 / 6 instead
        // of 4.0 / 6. The compensated sum recovers every term exactly.
        let xs = [1.0e16, 1.0, 1.0, 1.0, -1.0e16, 1.0];
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((naive - 4.0 / 6.0).abs() > 0.1, "naive sum should drift");
        assert!((mean(&xs) - 4.0 / 6.0).abs() < 1e-12);
        // Same shape through the point-wise series aggregation.
        let series: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        assert!((mean_series(&series)[0] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_survives_large_common_offset() {
        // Shifting data by 1e9 must not change its spread; the naive
        // sum-of-squares formula collapses here, Welford does not.
        let offset = 1.0e9;
        let xs: Vec<f64> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .map(|&x| x + offset)
            .collect();
        assert!((std_dev(&xs) - 2.138089935299395).abs() < 1e-6);
    }

    #[test]
    fn downsample_includes_last_point_and_respects_count() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let sampled = downsample(&series, 10);
        assert_eq!(sampled.len(), 10);
        assert_eq!(sampled.last(), Some(&(99, 99.0)));
        assert!(downsample(&series, 0).is_empty());
        assert!(downsample(&[], 5).is_empty());
        // Requesting more points than available returns every point once.
        let small = downsample(&[1.0, 2.0], 10);
        assert_eq!(small, vec![(0, 1.0), (1, 2.0)]);
    }
}
