//! Single-run simulation drivers for the four scenarios.
//!
//! A run drives one policy against one [`NetworkedBandit`] for `horizon` time
//! slots, charging regret according to the scenario's reward model:
//!
//! * [`SingleScenario::SideObservation`] (SSO) — the reward is the pulled arm's
//!   direct reward; the benchmark is `μ_1` (Equation 1).
//! * [`SingleScenario::SideReward`] (SSR) — the reward is the neighbourhood sum
//!   `B_{I_t,t}`; the benchmark is `u_1` (Equation 3).
//! * [`CombinatorialScenario::SideObservation`] (CSO) — the reward is the
//!   strategy's direct sum `R_{I_t,t}`; the benchmark is `λ_1` (Equation 2).
//! * [`CombinatorialScenario::SideReward`] (CSR) — the reward is the coverage
//!   sum `CB_{I_t,t}`; the benchmark is `σ_1` (Equation 4).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use netband_core::{CombinatorialPolicy, SinglePlayPolicy};
use netband_env::feasible::FeasibleSet;
use netband_env::{DriftSchedule, EnvError, NetworkedBandit, PullBuffer, StrategyFamily};

use crate::regret::RegretTrace;
use crate::step;

/// Reward model of a single-play run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SingleScenario {
    /// SSO: collect the direct reward, observe the neighbourhood.
    SideObservation,
    /// SSR: collect the whole neighbourhood's reward.
    SideReward,
}

/// Reward model of a combinatorial-play run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CombinatorialScenario {
    /// CSO: collect the strategy's direct reward, observe `Y_x`.
    SideObservation,
    /// CSR: collect the reward of every arm in `Y_x`.
    SideReward,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Name of the policy that produced the run.
    pub policy: String,
    /// Number of time slots simulated.
    pub horizon: usize,
    /// The benchmark value (optimal expected per-round reward) regret was
    /// charged against.
    pub optimal_mean: f64,
    /// Total realised reward collected over the run.
    pub total_reward: f64,
    /// Per-round regret records.
    pub trace: RegretTrace,
}

impl RunResult {
    /// Final cumulative realised regret `R_n`.
    pub fn total_regret(&self) -> f64 {
        self.trace.total()
    }

    /// Final time-averaged realised regret `R_n / n`.
    pub fn average_regret(&self) -> f64 {
        self.trace.final_average()
    }
}

/// Runs a single-play policy for `horizon` slots.
///
/// The per-slot rewards are drawn from the environment with the RNG seeded by
/// `seed`, so a `(bandit, seed)` pair pins down the entire sample path — two
/// policies run with the same pair face exactly the same randomness *only if*
/// they pull arms in the same order (rewards are drawn per pull); for perfectly
/// coupled comparisons use [`run_single_coupled`].
pub fn run_single<P: SinglePlayPolicy + ?Sized>(
    bandit: &NetworkedBandit,
    policy: &mut P,
    scenario: SingleScenario,
    horizon: usize,
    seed: u64,
) -> RunResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let optimal = step::single_benchmark(bandit, scenario);
    let mut trace = RegretTrace::with_capacity(horizon);
    let mut total_reward = 0.0;
    // All per-round storage (sample vector, observation list) lives in `buf`;
    // after the first round the loop allocates nothing.
    let mut buf = PullBuffer::new();
    for t in 1..=horizon {
        let arm = policy.select_arm(t);
        let feedback = buf.pull_single(bandit, arm, &mut rng);
        let (reward, mean) = step::score_single(bandit, scenario, feedback);
        total_reward += reward;
        trace.record(optimal - reward, optimal - mean);
        policy.update(t, feedback);
    }
    RunResult {
        policy: policy.name().to_owned(),
        horizon,
        optimal_mean: optimal,
        total_reward,
        trace,
    }
}

/// Runs a single-play policy for `horizon` slots in a drifting world.
///
/// The arm means of slot `t` are `drift.means_at(base, t)` where `base` is
/// the bandit's stationary mean vector; rewards are Bernoulli draws from the
/// drifted means (one RNG draw per arm per slot). Regret is charged against
/// the *dynamic* oracle — the per-slot optimum under that slot's means — and
/// the reported `optimal_mean` is the horizon average of the per-slot optima.
///
/// Drift is a pure function of the slot number (it consumes no randomness),
/// so `(bandit, drift, seed)` pins the whole sample path bit for bit — the
/// property the serving engine's snapshot/restore equivalence relies on.
pub fn run_single_drifted<P: SinglePlayPolicy + ?Sized>(
    bandit: &NetworkedBandit,
    drift: &DriftSchedule,
    policy: &mut P,
    scenario: SingleScenario,
    horizon: usize,
    seed: u64,
) -> RunResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = bandit.means().to_vec();
    let mut means = vec![0.0; base.len()];
    let mut optimal_sum = 0.0;
    let mut trace = RegretTrace::with_capacity(horizon);
    let mut total_reward = 0.0;
    let mut buf = PullBuffer::new();
    for t in 1..=horizon {
        drift.means_at(&base, t as u64, &mut means);
        let optimal = step::single_benchmark_with(bandit, &means, scenario);
        optimal_sum += optimal;
        let arm = policy.select_arm(t);
        let feedback = buf.pull_single_drifted(bandit, &means, arm, &mut rng);
        let (reward, mean) = step::score_single_with(bandit, &means, scenario, feedback);
        total_reward += reward;
        trace.record(optimal - reward, optimal - mean);
        policy.update(t, feedback);
    }
    RunResult {
        policy: policy.name().to_owned(),
        horizon,
        optimal_mean: if horizon == 0 {
            0.0
        } else {
            optimal_sum / horizon as f64
        },
        total_reward,
        trace,
    }
}

/// Runs several single-play policies against the *same* sample path: at every
/// time slot one reward vector is drawn and each policy's pull is scored against
/// it. This is the coupling used for Fig. 3 (MOSS vs DFL-SSO), which removes
/// sampling noise from the comparison.
pub fn run_single_coupled(
    bandit: &NetworkedBandit,
    policies: &mut [&mut dyn SinglePlayPolicy],
    scenario: SingleScenario,
    horizon: usize,
    seed: u64,
) -> Vec<RunResult> {
    let mut rng = StdRng::seed_from_u64(seed);
    let optimal = step::single_benchmark(bandit, scenario);
    let mut traces: Vec<RegretTrace> = policies
        .iter()
        .map(|_| RegretTrace::with_capacity(horizon))
        .collect();
    let mut rewards = vec![0.0; policies.len()];
    // One reward vector per round, shared by every policy; feedback is built
    // into a reused buffer, so the loop is allocation-free after round one.
    let mut samples = Vec::with_capacity(bandit.num_arms());
    let mut buf = PullBuffer::new();
    for t in 1..=horizon {
        bandit.sample_rewards_into(&mut rng, &mut samples);
        for (idx, policy) in policies.iter_mut().enumerate() {
            let arm = policy.select_arm(t);
            let feedback = buf.single_from_samples(bandit, arm, &samples);
            let (reward, mean) = step::score_single(bandit, scenario, feedback);
            rewards[idx] += reward;
            traces[idx].record(optimal - reward, optimal - mean);
            policy.update(t, feedback);
        }
    }
    policies
        .iter()
        .zip(traces)
        .zip(rewards)
        .map(|((policy, trace), total_reward)| RunResult {
            policy: policy.name().to_owned(),
            horizon,
            optimal_mean: optimal,
            total_reward,
            trace,
        })
        .collect()
}

/// Runs a combinatorial policy for `horizon` slots.
///
/// # Errors
///
/// Returns an [`EnvError`] if the policy ever proposes an invalid strategy
/// (empty or referencing a non-existent arm).
pub fn run_combinatorial<P: CombinatorialPolicy + ?Sized>(
    bandit: &NetworkedBandit,
    family: &StrategyFamily,
    policy: &mut P,
    scenario: CombinatorialScenario,
    horizon: usize,
    seed: u64,
) -> Result<RunResult, EnvError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let optimal = step::combinatorial_benchmark(bandit, family, scenario);
    let mut trace = RegretTrace::with_capacity(horizon);
    let mut total_reward = 0.0;
    // Sample vector, observation set, observation list, and the selected
    // strategy all live in reused buffers; the loop is allocation-free after
    // round one.
    let mut buf = PullBuffer::new();
    let mut strategy = Vec::new();
    for t in 1..=horizon {
        policy.select_strategy_into(t, &mut strategy);
        debug_assert!(
            family.contains(&strategy, bandit.graph()),
            "policy {} proposed an infeasible strategy {strategy:?}",
            policy.name()
        );
        let feedback = buf.pull_strategy(bandit, &strategy, &mut rng)?;
        let (reward, mean) = step::score_combinatorial(bandit, scenario, feedback);
        total_reward += reward;
        trace.record(optimal - reward, optimal - mean);
        policy.update(t, feedback);
    }
    Ok(RunResult {
        policy: policy.name().to_owned(),
        horizon,
        optimal_mean: optimal,
        total_reward,
        trace,
    })
}

/// Runs a combinatorial policy for `horizon` slots in a drifting world; see
/// [`run_single_drifted`] for the drift and regret semantics.
///
/// # Errors
///
/// Returns an [`EnvError`] if the policy ever proposes an invalid strategy
/// (empty or referencing a non-existent arm).
pub fn run_combinatorial_drifted<P: CombinatorialPolicy + ?Sized>(
    bandit: &NetworkedBandit,
    family: &StrategyFamily,
    drift: &DriftSchedule,
    policy: &mut P,
    scenario: CombinatorialScenario,
    horizon: usize,
    seed: u64,
) -> Result<RunResult, EnvError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = bandit.means().to_vec();
    let mut means = vec![0.0; base.len()];
    let mut optimal_sum = 0.0;
    let mut trace = RegretTrace::with_capacity(horizon);
    let mut total_reward = 0.0;
    let mut buf = PullBuffer::new();
    let mut strategy = Vec::new();
    for t in 1..=horizon {
        drift.means_at(&base, t as u64, &mut means);
        let optimal = step::combinatorial_benchmark_with(bandit, family, &means, scenario);
        optimal_sum += optimal;
        policy.select_strategy_into(t, &mut strategy);
        debug_assert!(
            family.contains(&strategy, bandit.graph()),
            "policy {} proposed an infeasible strategy {strategy:?}",
            policy.name()
        );
        let feedback = buf.pull_strategy_drifted(bandit, &means, &strategy, &mut rng)?;
        let (reward, mean) = step::score_combinatorial_with(&means, scenario, feedback);
        total_reward += reward;
        trace.record(optimal - reward, optimal - mean);
        policy.update(t, feedback);
    }
    Ok(RunResult {
        policy: policy.name().to_owned(),
        horizon,
        optimal_mean: if horizon == 0 {
            0.0
        } else {
            optimal_sum / horizon as f64
        },
        total_reward,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_baselines::Moss;
    use netband_core::{DflCso, DflCsr, DflSso, DflSsr};
    use netband_env::ArmSet;
    use netband_graph::generators;

    fn bandit(k: usize, p: f64, seed: u64) -> NetworkedBandit {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::erdos_renyi(k, p, &mut rng);
        let arms = ArmSet::random_bernoulli(k, &mut rng);
        NetworkedBandit::new(graph, arms).unwrap()
    }

    #[test]
    fn sso_run_produces_full_trace_and_positive_reward() {
        let env = bandit(10, 0.3, 1);
        let mut policy = DflSso::new(env.graph().clone());
        let result = run_single(&env, &mut policy, SingleScenario::SideObservation, 500, 2);
        assert_eq!(result.horizon, 500);
        assert_eq!(result.trace.len(), 500);
        assert!(result.total_reward > 0.0);
        assert_eq!(result.policy, "DFL-SSO");
        assert!((result.optimal_mean - env.best_single_direct_mean()).abs() < 1e-12);
        // Pseudo-regret is always non-negative for the matching benchmark.
        assert!(result.trace.pseudo().iter().all(|&r| r >= -1e-12));
    }

    #[test]
    fn ssr_run_uses_the_side_reward_benchmark() {
        let env = bandit(10, 0.4, 3);
        let mut policy = DflSsr::new(env.graph().clone());
        let result = run_single(&env, &mut policy, SingleScenario::SideReward, 300, 4);
        assert!((result.optimal_mean - env.best_single_side_mean()).abs() < 1e-12);
        assert!(result.trace.pseudo().iter().all(|&r| r >= -1e-12));
    }

    #[test]
    fn coupled_run_gives_every_policy_the_same_sample_path() {
        let env = bandit(8, 0.5, 5);
        let mut moss_a = Moss::new(8);
        let mut moss_b = Moss::new(8);
        let results = run_single_coupled(
            &env,
            &mut [&mut moss_a, &mut moss_b],
            SingleScenario::SideObservation,
            200,
            6,
        );
        assert_eq!(results.len(), 2);
        // Identical policies on an identical sample path behave identically.
        assert_eq!(results[0].trace, results[1].trace);
        assert_eq!(results[0].total_reward, results[1].total_reward);
    }

    #[test]
    fn dfl_sso_beats_moss_on_a_dense_graph() {
        // The Fig. 3 comparison in miniature: strong side observation should give
        // DFL-SSO a lower cumulative regret than MOSS on the same sample path.
        let mut rng = StdRng::seed_from_u64(7);
        let graph = generators::erdos_renyi(30, 0.5, &mut rng);
        let arms = ArmSet::random_bernoulli(30, &mut rng);
        let env = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut dfl = DflSso::new(graph);
        let mut moss = Moss::new(30);
        let results = run_single_coupled(
            &env,
            &mut [&mut dfl, &mut moss],
            SingleScenario::SideObservation,
            3000,
            8,
        );
        let dfl_regret = results[0].trace.total_pseudo();
        let moss_regret = results[1].trace.total_pseudo();
        assert!(
            dfl_regret < moss_regret,
            "DFL-SSO pseudo-regret {dfl_regret} should be below MOSS {moss_regret}"
        );
    }

    #[test]
    fn cso_run_with_explicit_family() {
        let mut rng = StdRng::seed_from_u64(9);
        let graph = generators::erdos_renyi(8, 0.4, &mut rng);
        let family = StrategyFamily::independent_sets(2);
        let strategies = family.enumerate(&graph).unwrap();
        let arms = ArmSet::random_bernoulli(8, &mut rng);
        let env = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = DflCso::from_strategies(&graph, strategies);
        let result = run_combinatorial(
            &env,
            &family,
            &mut policy,
            CombinatorialScenario::SideObservation,
            400,
            10,
        )
        .unwrap();
        assert_eq!(result.trace.len(), 400);
        assert!(result.trace.pseudo().iter().all(|&r| r >= -1e-12));
    }

    #[test]
    fn csr_run_uses_the_coverage_benchmark() {
        let mut rng = StdRng::seed_from_u64(11);
        let graph = generators::erdos_renyi(10, 0.3, &mut rng);
        let family = StrategyFamily::at_most_m(10, 3);
        let arms = ArmSet::random_bernoulli(10, &mut rng);
        let env = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = DflCsr::new(graph, family.clone());
        let result = run_combinatorial(
            &env,
            &family,
            &mut policy,
            CombinatorialScenario::SideReward,
            400,
            12,
        )
        .unwrap();
        assert!((result.optimal_mean - env.best_strategy_side_mean(&family)).abs() < 1e-12);
        assert!(result.trace.pseudo().iter().all(|&r| r >= -1e-12));
    }

    #[test]
    fn zero_horizon_runs_are_empty_but_valid() {
        let env = bandit(5, 0.3, 13);
        let mut policy = DflSso::new(env.graph().clone());
        let result = run_single(&env, &mut policy, SingleScenario::SideObservation, 0, 14);
        assert_eq!(result.trace.len(), 0);
        assert_eq!(result.total_regret(), 0.0);
        assert_eq!(result.average_regret(), 0.0);
    }

    #[test]
    fn drifted_run_charges_regret_against_the_dynamic_oracle() {
        use netband_env::{ChangePoint, DriftSchedule};
        let env = bandit(6, 0.4, 21);
        let drift = DriftSchedule {
            change_points: vec![ChangePoint {
                round: 100,
                rotation: 3,
            }],
            ..DriftSchedule::default()
        };
        let mut policy = DflSso::new(env.graph().clone());
        let result = run_single_drifted(
            &env,
            &drift,
            &mut policy,
            SingleScenario::SideObservation,
            200,
            22,
        );
        assert_eq!(result.trace.len(), 200);
        // The dynamic oracle dominates every played arm round by round.
        assert!(result.trace.pseudo().iter().all(|&r| r >= -1e-12));
        // The reported benchmark is the average per-round optimum, which for a
        // pure rotation equals the stationary optimum (the mean set is only
        // permuted, never changed).
        assert!((result.optimal_mean - env.best_single_direct_mean()).abs() < 1e-12);
    }

    #[test]
    fn drifted_runs_are_deterministic_under_the_same_seed() {
        use netband_env::{DriftSchedule, GradualDrift};
        let env = bandit(6, 0.4, 23);
        let drift = DriftSchedule {
            gradual: Some(GradualDrift {
                amplitude: 0.2,
                period: 50,
            }),
            ..DriftSchedule::default()
        };
        let family = StrategyFamily::at_most_m(6, 2);
        let mut p1 = DflCsr::new(env.graph().clone(), family.clone());
        let mut p2 = DflCsr::new(env.graph().clone(), family.clone());
        let r1 = run_combinatorial_drifted(
            &env,
            &family,
            &drift,
            &mut p1,
            CombinatorialScenario::SideReward,
            150,
            24,
        )
        .unwrap();
        let r2 = run_combinatorial_drifted(
            &env,
            &family,
            &drift,
            &mut p2,
            CombinatorialScenario::SideReward,
            150,
            24,
        )
        .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn runs_are_deterministic_under_the_same_seed() {
        let env = bandit(6, 0.5, 15);
        let mut p1 = DflSso::new(env.graph().clone());
        let mut p2 = DflSso::new(env.graph().clone());
        let r1 = run_single(&env, &mut p1, SingleScenario::SideObservation, 200, 16);
        let r2 = run_single(&env, &mut p2, SingleScenario::SideObservation, 200, 16);
        assert_eq!(r1, r2);
    }
}
