//! Per-round reward/benchmark scoring shared by every driver.
//!
//! A simulated round — and a served decision in `netband-serve` — is scored
//! the same way: the realised reward collected under the scenario's reward
//! model, and the expected per-round reward of the played action (for pseudo
//! regret). These helpers are the single source of truth for those two
//! numbers; the batch runner ([`crate::runner`]) and the serving engine both
//! call them, which is what makes the engine's regret accounting bit-identical
//! to the simulation's (the golden-trace suite pins the exact float
//! expressions, summation order included).

use netband_env::{CombinatorialFeedback, NetworkedBandit, SinglePlayFeedback};

use crate::runner::{CombinatorialScenario, SingleScenario};

/// Scores one single-play pull: returns `(reward, mean)` where `reward` is the
/// realised reward charged under `scenario` and `mean` is the expected
/// per-round reward of the pulled arm.
///
/// # Panics
///
/// Panics if the feedback's arm is out of range for `bandit`.
pub fn score_single(
    bandit: &NetworkedBandit,
    scenario: SingleScenario,
    feedback: &SinglePlayFeedback,
) -> (f64, f64) {
    match scenario {
        SingleScenario::SideObservation => (feedback.direct_reward, bandit.means()[feedback.arm]),
        SingleScenario::SideReward => (feedback.side_reward, bandit.side_reward_mean(feedback.arm)),
    }
}

/// Scores one combinatorial pull: returns `(reward, mean)` where `reward` is
/// the realised reward charged under `scenario` and `mean` is the expected
/// per-round reward of the played strategy.
///
/// The feedback already carries the normalised strategy and its observation
/// set `Y_x` (both sorted), so the means are summed straight off them — the
/// same terms in the same order as
/// [`NetworkedBandit::strategy_direct_mean`] /
/// [`NetworkedBandit::strategy_side_mean`], without rebuilding the
/// neighbourhood union.
///
/// # Panics
///
/// Panics if the feedback references an arm out of range for `bandit`.
pub fn score_combinatorial(
    bandit: &NetworkedBandit,
    scenario: CombinatorialScenario,
    feedback: &CombinatorialFeedback,
) -> (f64, f64) {
    let means = bandit.means();
    match scenario {
        CombinatorialScenario::SideObservation => (
            feedback.direct_reward,
            feedback.strategy.iter().map(|&i| means[i]).sum::<f64>(),
        ),
        CombinatorialScenario::SideReward => (
            feedback.side_reward,
            feedback
                .observation_set
                .iter()
                .map(|&i| means[i])
                .sum::<f64>(),
        ),
    }
}

/// [`score_single`] against an explicit mean vector — the drifting-world
/// variant, where the round's means come from a
/// `netband_env::DriftSchedule` instead of the arm bank. With
/// `means == bandit.means()` the two are bit-identical (same expressions,
/// same summation order).
///
/// # Panics
///
/// Panics if the feedback's arm is out of range for `means`.
pub fn score_single_with(
    bandit: &NetworkedBandit,
    means: &[f64],
    scenario: SingleScenario,
    feedback: &SinglePlayFeedback,
) -> (f64, f64) {
    match scenario {
        SingleScenario::SideObservation => (feedback.direct_reward, means[feedback.arm]),
        SingleScenario::SideReward => (
            feedback.side_reward,
            bandit.side_reward_mean_with(feedback.arm, means),
        ),
    }
}

/// [`score_combinatorial`] against an explicit mean vector; see
/// [`score_single_with`].
///
/// # Panics
///
/// Panics if the feedback references an arm out of range for `means`.
pub fn score_combinatorial_with(
    means: &[f64],
    scenario: CombinatorialScenario,
    feedback: &CombinatorialFeedback,
) -> (f64, f64) {
    match scenario {
        CombinatorialScenario::SideObservation => (
            feedback.direct_reward,
            feedback.strategy.iter().map(|&i| means[i]).sum::<f64>(),
        ),
        CombinatorialScenario::SideReward => (
            feedback.side_reward,
            feedback
                .observation_set
                .iter()
                .map(|&i| means[i])
                .sum::<f64>(),
        ),
    }
}

/// The benchmark (optimal expected per-round reward) a single-play run under
/// `scenario` charges regret against.
pub fn single_benchmark(bandit: &NetworkedBandit, scenario: SingleScenario) -> f64 {
    match scenario {
        SingleScenario::SideObservation => bandit.best_single_direct_mean(),
        SingleScenario::SideReward => bandit.best_single_side_mean(),
    }
}

/// The benchmark a combinatorial run under `scenario` charges regret against.
pub fn combinatorial_benchmark(
    bandit: &NetworkedBandit,
    family: &netband_env::StrategyFamily,
    scenario: CombinatorialScenario,
) -> f64 {
    match scenario {
        CombinatorialScenario::SideObservation => bandit.best_strategy_direct_mean(family),
        CombinatorialScenario::SideReward => bandit.best_strategy_side_mean(family),
    }
}

/// [`single_benchmark`] against an explicit mean vector — the per-round
/// benchmark of a drifting world (the dynamic-oracle regret notion of the
/// nonstationary-bandit literature).
pub fn single_benchmark_with(
    bandit: &NetworkedBandit,
    means: &[f64],
    scenario: SingleScenario,
) -> f64 {
    match scenario {
        SingleScenario::SideObservation => bandit.best_single_direct_mean_with(means),
        SingleScenario::SideReward => bandit.best_single_side_mean_with(means),
    }
}

/// [`combinatorial_benchmark`] against an explicit mean vector; see
/// [`single_benchmark_with`].
pub fn combinatorial_benchmark_with(
    bandit: &NetworkedBandit,
    family: &netband_env::StrategyFamily,
    means: &[f64],
    scenario: CombinatorialScenario,
) -> f64 {
    match scenario {
        CombinatorialScenario::SideObservation => {
            bandit.best_strategy_direct_mean_with(family, means)
        }
        CombinatorialScenario::SideReward => bandit.best_strategy_side_mean_with(family, means),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_env::{ArmSet, StrategyFamily};
    use netband_graph::generators;

    fn small_instance() -> NetworkedBandit {
        let graph = generators::path(4);
        NetworkedBandit::new(graph, ArmSet::bernoulli(&[0.2, 0.9, 0.4, 0.6])).unwrap()
    }

    #[test]
    fn single_scores_match_definitions() {
        let env = small_instance();
        let samples = vec![1.0, 0.0, 1.0, 0.0];
        let fb = env.feedback_single_from_samples(1, &samples);
        let (reward, mean) = score_single(&env, SingleScenario::SideObservation, &fb);
        assert_eq!(reward, 0.0);
        assert!((mean - 0.9).abs() < 1e-12);
        let (reward, mean) = score_single(&env, SingleScenario::SideReward, &fb);
        assert_eq!(reward, 2.0); // arms 0,1,2 revealed: 1 + 0 + 1
        assert!((mean - 1.5).abs() < 1e-12); // 0.2 + 0.9 + 0.4
    }

    #[test]
    fn combinatorial_scores_match_definitions() {
        let env = small_instance();
        let samples = vec![1.0, 0.0, 1.0, 0.0];
        let fb = env
            .feedback_strategy_from_samples(&[0, 3], &samples)
            .unwrap();
        let (reward, mean) = score_combinatorial(&env, CombinatorialScenario::SideObservation, &fb);
        assert_eq!(reward, 1.0);
        assert!((mean - 0.8).abs() < 1e-12); // 0.2 + 0.6
        let (reward, mean) = score_combinatorial(&env, CombinatorialScenario::SideReward, &fb);
        assert_eq!(reward, 2.0); // Y = {0,1,2,3}
        assert!((mean - 2.1).abs() < 1e-12);
    }

    #[test]
    fn benchmarks_match_bandit_optima() {
        let env = small_instance();
        assert_eq!(
            single_benchmark(&env, SingleScenario::SideObservation),
            env.best_single_direct_mean()
        );
        assert_eq!(
            single_benchmark(&env, SingleScenario::SideReward),
            env.best_single_side_mean()
        );
        let family = StrategyFamily::at_most_m(4, 2);
        assert_eq!(
            combinatorial_benchmark(&env, &family, CombinatorialScenario::SideObservation),
            env.best_strategy_direct_mean(&family)
        );
        assert_eq!(
            combinatorial_benchmark(&env, &family, CombinatorialScenario::SideReward),
            env.best_strategy_side_mean(&family)
        );
    }
}
