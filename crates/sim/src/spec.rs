//! Spec-driven simulation entry points.
//!
//! These are the bridge between `netband-spec`'s declarative
//! [`ScenarioSpec`] documents and the concrete runners in [`crate::runner`]:
//! a spec is built into an environment/policy pair and then driven through
//! **exactly** the same code path as a hand-wired run, so a spec-built run is
//! bit-identical to its hand-wired counterpart (the golden-trace equivalence
//! suite pins this).
//!
//! * [`run_spec`] — one run of replication 0.
//! * [`run_built`] — one run of an already-built scenario (lets callers
//!   inspect the built family or reuse a build).
//! * [`replicate_spec`] — all `spec.replications` runs, aggregated; each
//!   replication `r` regenerates the workload with `workload.seed + r` and
//!   draws the sample path with `seed + r`, matching the paper's averaged
//!   curves over independent random instances.

use std::sync::Mutex;

use netband_spec::{AnyPolicy, BuiltScenario, ScenarioSpec, SideBonus, SpecError};

use crate::replicate::{replicate, AveragedRun, ReplicationConfig};
use crate::runner::{
    run_combinatorial, run_combinatorial_drifted, run_single, run_single_drifted,
    CombinatorialScenario, RunResult, SingleScenario,
};

/// The [`SingleScenario`] a side bonus selects for single-play policies.
pub fn single_scenario(side_bonus: SideBonus) -> SingleScenario {
    match side_bonus {
        SideBonus::Observation => SingleScenario::SideObservation,
        SideBonus::Reward => SingleScenario::SideReward,
    }
}

/// The [`CombinatorialScenario`] a side bonus selects for combinatorial
/// policies.
pub fn combinatorial_scenario(side_bonus: SideBonus) -> CombinatorialScenario {
    match side_bonus {
        SideBonus::Observation => CombinatorialScenario::SideObservation,
        SideBonus::Reward => CombinatorialScenario::SideReward,
    }
}

/// Runs an already-built scenario through the matching runner.
///
/// # Errors
///
/// [`SpecError::MissingFamily`] if a combinatorial policy was built without a
/// family (cannot happen for scenarios built by [`ScenarioSpec::build`],
/// which validates this), or [`SpecError::Env`] if the environment rejects a
/// proposed strategy.
pub fn run_built(built: &mut BuiltScenario) -> Result<RunResult, SpecError> {
    let side_bonus = built.side_bonus;
    let horizon = built.horizon;
    let seed = built.seed;
    // A declared-but-trivial drift schedule takes the stationary fast path,
    // so `drift: {}` behaves (and scores) exactly like no drift at all.
    let drift = built.drift.as_ref().filter(|d| !d.is_trivial());
    match &mut built.policy {
        AnyPolicy::Single(policy) => Ok(match drift {
            Some(drift) => run_single_drifted(
                &built.bandit,
                drift,
                policy,
                single_scenario(side_bonus),
                horizon,
                seed,
            ),
            None => run_single(
                &built.bandit,
                policy,
                single_scenario(side_bonus),
                horizon,
                seed,
            ),
        }),
        AnyPolicy::Combinatorial(policy) => {
            let family = built.family.as_ref().ok_or(SpecError::MissingFamily {
                policy: "combinatorial",
            })?;
            let scenario = combinatorial_scenario(side_bonus);
            match drift {
                Some(drift) => run_combinatorial_drifted(
                    &built.bandit,
                    family,
                    drift,
                    policy,
                    scenario,
                    horizon,
                    seed,
                ),
                None => run_combinatorial(&built.bandit, family, policy, scenario, horizon, seed),
            }
            .map_err(SpecError::Env)
        }
    }
}

/// Builds and runs replication 0 of a scenario spec.
///
/// # Errors
///
/// Any [`SpecError`] from validation, building, or the run itself.
pub fn run_spec(spec: &ScenarioSpec) -> Result<RunResult, SpecError> {
    run_built(&mut spec.build()?)
}

/// Builds and runs every replication of a scenario spec and aggregates the
/// traces.
///
/// Replication `r` regenerates the workload instance with seed
/// `workload.seed + r` and draws its reward stream with seed `seed + r`, so
/// the aggregate averages over independent random instances — the paper's
/// setup ("randomly generate a relation graph…" per replication). For a fixed
/// instance across replications, give each replication its own spec instead.
///
/// Replications run on the standard parallel replication driver
/// ([`mod@crate::replicate`]); results are aggregated by replication index,
/// so the aggregate is identical to a serial run regardless of worker count.
///
/// # Errors
///
/// Any [`SpecError`] from validation, building, or a run.
pub fn replicate_spec(spec: &ScenarioSpec) -> Result<AveragedRun, SpecError> {
    // Validate up front: with an invalid replication count nothing below
    // would run and aggregation would see zero traces.
    spec.validate()?;
    // Build every replication first, so configuration problems — including
    // instance-dependent ones, like a family one replication's graph makes
    // unenumerable — surface as errors here rather than as worker panics.
    let built: Result<Vec<BuiltScenario>, SpecError> = (0..spec.replications)
        .map(|r| spec.build_replication(r as u64))
        .collect();
    let slots: Vec<Mutex<Option<BuiltScenario>>> =
        built?.into_iter().map(|b| Mutex::new(Some(b))).collect();
    // The runs themselves go through the standard (parallel, deterministic —
    // results are aggregated by replication index) replication driver. A
    // spec-built policy only proposes feasible strategies, so `run_built`
    // cannot fail past this point; the panic is a backstop.
    let config = ReplicationConfig::parallel(spec.replications, 0);
    Ok(replicate(&config, |r, _seed| {
        let mut scenario = slots[r]
            .lock()
            .expect("replication slot poisoned")
            .take()
            .expect("each replication index is dispatched exactly once");
        run_built(&mut scenario)
            .unwrap_or_else(|e| panic!("replication {r} of scenario {:?} failed: {e}", spec.name))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netband_core::DflSso;
    use netband_spec::{
        presets, ArmsSpec, FamilySpec, FeedbackSpec, GraphSpec, PolicySpec, WorkloadSpec,
        SPEC_VERSION,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_spec(policy: PolicySpec, family: Option<FamilySpec>) -> ScenarioSpec {
        ScenarioSpec {
            version: SPEC_VERSION,
            name: "demo".into(),
            workload: WorkloadSpec {
                graph: GraphSpec::ErdosRenyi {
                    num_arms: 10,
                    edge_prob: 0.4,
                },
                arms: ArmsSpec::UniformMeanBernoulli { num_arms: 10 },
                family,
                drift: None,
                seed: 42,
            },
            policy,
            side_bonus: SideBonus::Observation,
            horizon: 200,
            replications: 3,
            seed: 7,
            feedback: FeedbackSpec::Immediate,
        }
    }

    #[test]
    fn run_spec_matches_the_hand_wired_runner_bit_for_bit() {
        let spec = demo_spec(PolicySpec::DflSso, None);
        let via_spec = run_spec(&spec).unwrap();

        // The hand-wired path: same instance seed, same run seed.
        let mut rng = StdRng::seed_from_u64(42);
        let graph = netband_graph::generators::erdos_renyi(10, 0.4, &mut rng);
        let arms = netband_env::ArmSet::random_bernoulli(10, &mut rng);
        let bandit = netband_env::NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = DflSso::new(graph);
        let by_hand = run_single(
            &bandit,
            &mut policy,
            SingleScenario::SideObservation,
            200,
            7,
        );

        assert_eq!(via_spec, by_hand);
    }

    #[test]
    fn run_spec_drives_combinatorial_policies() {
        let spec = demo_spec(PolicySpec::DflCsr, Some(FamilySpec::AtMostM { m: 3 }));
        let mut spec = spec;
        spec.side_bonus = SideBonus::Reward;
        let result = run_spec(&spec).unwrap();
        assert_eq!(result.policy, "DFL-CSR");
        assert_eq!(result.trace.len(), 200);
        assert!(result.trace.pseudo().iter().all(|&r| r >= -1e-12));
    }

    #[test]
    fn replicate_spec_aggregates_independent_instances() {
        let spec = demo_spec(PolicySpec::DflSso, None);
        let avg = replicate_spec(&spec).unwrap();
        assert_eq!(avg.replications, 3);
        assert_eq!(avg.horizon, 200);
        assert_eq!(avg.policy, "DFL-SSO");
        // Replication r is exactly run_spec of the shifted spec.
        let mut shifted = spec.clone();
        shifted.workload.seed += 2;
        shifted.seed += 2;
        let third = run_spec(&shifted).unwrap();
        assert_eq!(avg.final_regrets[2], third.total_regret());
    }

    #[test]
    fn replicate_spec_runs_presets_at_reduced_scale() {
        let mut spec = presets::channel_access(12, 3, 0.35, 9);
        spec.horizon = 120;
        spec.replications = 2;
        let avg = replicate_spec(&spec).unwrap();
        assert_eq!(avg.replications, 2);
        assert_eq!(avg.policy, "DFL-CSR");
    }

    #[test]
    fn trivial_drift_takes_the_stationary_path_bit_for_bit() {
        let stationary = demo_spec(PolicySpec::DflSso, None);
        let mut trivial = stationary.clone();
        trivial.workload.drift = Some(netband_spec::DriftSpec::default());
        assert_eq!(run_spec(&stationary).unwrap(), run_spec(&trivial).unwrap());
    }

    #[test]
    fn drifting_specs_run_through_the_drifted_runners() {
        use netband_spec::{ChangePointSpec, DriftSpec, EstimatorSpec};
        let mut spec = demo_spec(
            PolicySpec::Cts {
                seed: 3,
                estimator: Some(EstimatorSpec::Discounted { gamma: 0.995 }),
            },
            Some(FamilySpec::AtMostM { m: 2 }),
        );
        spec.workload.drift = Some(DriftSpec {
            change_points: vec![ChangePointSpec {
                round: 100,
                rotation: 5,
            }],
            ..DriftSpec::default()
        });
        let result = run_spec(&spec).unwrap();
        assert_eq!(result.policy, "CTS-D");
        assert_eq!(result.trace.len(), 200);
        assert!(result.trace.pseudo().iter().all(|&r| r >= -1e-12));
    }

    #[test]
    fn invalid_specs_are_rejected_before_running() {
        let mut spec = demo_spec(PolicySpec::Cucb, None);
        // Combinatorial policy without a family.
        assert!(matches!(
            run_spec(&spec),
            Err(SpecError::MissingFamily { .. })
        ));
        spec.policy = PolicySpec::DflSso;
        spec.replications = 0;
        assert!(matches!(
            replicate_spec(&spec),
            Err(SpecError::Invalid { .. })
        ));
    }
}
