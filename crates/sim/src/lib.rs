//! Simulation engine for networked combinatorial bandits.
//!
//! This crate replaces the unpublished simulation scripts behind Section VII of
//! the paper: it drives any policy implementing the `netband-core` traits
//! against a [`netband_env::NetworkedBandit`], charges regret according to the
//! scenario's reward model, averages over independent replications (optionally
//! in parallel), and exports the resulting curves.
//!
//! * [`runner`] — single-run drivers for the four scenarios, including the
//!   coupled driver that feeds several policies the same sample path (Fig. 3).
//! * [`step`] — the per-round reward/benchmark scoring shared by the runners
//!   and the `netband-serve` engine (one source of truth for the float
//!   expressions the golden traces pin).
//! * [`regret`] — per-round regret traces (realised and pseudo), cumulative and
//!   time-averaged views.
//! * [`spec`] — spec-driven entry points ([`run_spec`] / [`replicate_spec`])
//!   that build `netband-spec` [`ScenarioSpec`](netband_spec::ScenarioSpec)
//!   documents and drive them through the same runners bit-identically.
//! * [`mod@replicate`] — multi-replication averaging with crossbeam-based
//!   parallelism.
//! * [`stats`] — means, deviations, confidence intervals, downsampling.
//! * [`export`] — CSV and fixed-width table output.
//!
//! # Example
//!
//! ```
//! use netband_core::DflSso;
//! use netband_env::{ArmSet, NetworkedBandit};
//! use netband_graph::generators;
//! use netband_sim::replicate::{replicate, ReplicationConfig};
//! use netband_sim::runner::{run_single, SingleScenario};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let graph = generators::erdos_renyi(15, 0.3, &mut rng);
//! let bandit = NetworkedBandit::new(graph.clone(), ArmSet::random_bernoulli(15, &mut rng))?;
//!
//! let config = ReplicationConfig::serial(5, 42);
//! let averaged = replicate(&config, |_, seed| {
//!     let mut policy = DflSso::new(graph.clone());
//!     run_single(&bandit, &mut policy, SingleScenario::SideObservation, 500, seed)
//! });
//! assert_eq!(averaged.expected_regret.len(), 500);
//! # Ok::<(), netband_env::EnvError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod regret;
pub mod replicate;
pub mod runner;
pub mod spec;
pub mod stats;
pub mod step;
pub mod sweep;

pub use regret::RegretTrace;
pub use replicate::{replicate, AveragedRun, ReplicationConfig};
pub use runner::{
    run_combinatorial, run_combinatorial_drifted, run_single, run_single_coupled,
    run_single_drifted, CombinatorialScenario, RunResult, SingleScenario,
};
pub use spec::{replicate_spec, run_built, run_spec};
pub use sweep::Sweep;
