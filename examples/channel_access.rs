//! Opportunistic channel access in a cognitive radio network.
//!
//! One of the applications listed in the paper's introduction: a secondary user
//! repeatedly picks a set of channels to sense/transmit on. Channels that
//! interfere at the same receiver are *related* — sensing one reveals the
//! occupancy of its neighbours — and the user may only transmit on a set of
//! mutually non-interfering channels (an independent set of the interference
//! graph). This is combinatorial play with side observation, handled by DFL-CSO
//! (Algorithm 2); the naive "treat every channel set as one arm" learner is
//! shown for contrast.
//!
//! Run with: `cargo run --release --example channel_access`

use netband::baselines::NaiveComArmMoss;
use netband::env::workloads;
use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), netband::env::EnvError> {
    let horizon = 5_000;
    let mut rng = StdRng::seed_from_u64(77);

    // 16 channels, transmit on at most 2 non-interfering ones per slot.
    let workload = workloads::channel_access(16, 2, 0.35, &mut rng);
    let bandit = &workload.bandit;
    let family = workload
        .try_family()
        .expect("combinatorial workload")
        .clone();
    let strategies = family
        .enumerate(bandit.graph())
        .expect("16 channels with pairs stay enumerable");
    println!(
        "{}: interference density {:.2}, |F| = {} feasible channel sets, optimal throughput {:.3}/slot",
        workload.name,
        bandit.graph().density(),
        strategies.len(),
        bandit.best_strategy_direct_mean(&family)
    );

    let mut dfl_cso = DflCso::from_strategies(bandit.graph(), strategies.clone());
    let mut naive = NaiveComArmMoss::new(strategies);

    let dfl_run = run_combinatorial(
        bandit,
        &family,
        &mut dfl_cso,
        CombinatorialScenario::SideObservation,
        horizon,
        3,
    )?;
    let naive_run = run_combinatorial(
        bandit,
        &family,
        &mut naive,
        CombinatorialScenario::SideObservation,
        horizon,
        3,
    )?;

    println!(
        "\n{:<20} {:>12} {:>12} {:>18}",
        "policy", "R_n", "R_n / n", "total throughput"
    );
    for run in [&dfl_run, &naive_run] {
        println!(
            "{:<20} {:>12.1} {:>12.4} {:>18.1}",
            run.policy,
            run.total_regret(),
            run.average_regret(),
            run.total_reward
        );
    }
    println!(
        "\nDFL-CSO shares observations across overlapping channel sets through the strategy\n\
         relation graph, so it needs far fewer slots than the naive per-set learner."
    );
    Ok(())
}
