//! Online advertising: combinatorial play with side reward.
//!
//! The paper's introduction motivates combinatorial play with an advertiser who
//! can place up to `M` advertisements per round and observes their
//! click-through. With side *reward* (Section VI), showing an ad to a user also
//! earns the clicks of her friends who see the share — so the advertiser wants
//! the ad set whose **neighbourhood coverage** of the social graph has the
//! highest total click probability.
//!
//! This example runs DFL-CSR (Algorithm 4) against CUCB (which optimises only
//! the direct clicks and ignores the word-of-mouth coverage) and LLR on the same
//! workload.
//!
//! Run with: `cargo run --release --example ad_placement`

use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), netband::env::EnvError> {
    let num_users = 40;
    let slots_per_round = 3;
    let horizon = 4_000;
    let mut rng = StdRng::seed_from_u64(99);

    // A preferential-attachment social graph: a few influencers, many leaves.
    let graph = generators::barabasi_albert(num_users, 2, &mut rng);
    // Click probability of each user, unknown to the advertiser.
    let arms = ArmSet::random_beta(num_users, 8.0, &mut rng);
    let bandit = NetworkedBandit::new(graph.clone(), arms)?;
    let family = StrategyFamily::at_most_m(num_users, slots_per_round);

    println!(
        "social graph: {} users, density {:.3}, max degree {}",
        num_users,
        graph.density(),
        graph.max_degree()
    );
    println!(
        "optimal expected coverage reward per round: {:.3}",
        bandit.best_strategy_side_mean(&family)
    );

    let mut dfl_csr = DflCsr::new(graph.clone(), family.clone());
    let mut cucb = Cucb::new(graph.clone(), family.clone());
    let mut llr = Llr::new(graph.clone(), family.clone());

    let dfl_run = run_combinatorial(
        &bandit,
        &family,
        &mut dfl_csr,
        CombinatorialScenario::SideReward,
        horizon,
        1,
    )?;
    let cucb_run = run_combinatorial(
        &bandit,
        &family,
        &mut cucb,
        CombinatorialScenario::SideReward,
        horizon,
        1,
    )?;
    let llr_run = run_combinatorial(
        &bandit,
        &family,
        &mut llr,
        CombinatorialScenario::SideReward,
        horizon,
        1,
    )?;

    println!(
        "\n{:<12} {:>14} {:>14} {:>16}",
        "policy", "R_n", "R_n / n", "total clicks"
    );
    for run in [&dfl_run, &cucb_run, &llr_run] {
        println!(
            "{:<12} {:>14.1} {:>14.4} {:>16.1}",
            run.policy,
            run.total_regret(),
            run.average_regret(),
            run.total_reward
        );
    }
    println!(
        "\nDFL-CSR exploits the coverage structure; CUCB/LLR optimise direct clicks only,\n\
         so their regret under the word-of-mouth (side-reward) objective stays higher."
    );
    Ok(())
}
