//! How much is side observation worth? A density study.
//!
//! Theorem 1 bounds DFL-SSO's regret by `15.94·sqrt(nK) + 0.74·C·sqrt(n/K)`,
//! where `C` is a clique cover of the (high-gap part of the) relation graph:
//! denser graphs → more side observation → smaller `C` → faster learning. This
//! example sweeps the edge probability of the relation graph and prints, for
//! each density, the greedy clique-cover size, the measured regret of DFL-SSO
//! and of MOSS on the same sample path, and the Theorem 1 bound.
//!
//! Run with: `cargo run --release --example density_study`

use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), netband::env::EnvError> {
    let num_arms = 40;
    let horizon = 3_000;
    let densities = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];

    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>14}",
        "density", "clique cover", "DFL-SSO R_n", "MOSS R_n", "Thm 1 bound"
    );
    for (i, &p) in densities.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let graph = generators::erdos_renyi(num_arms, p, &mut rng);
        let arms = ArmSet::random_bernoulli(num_arms, &mut rng);
        let bandit = NetworkedBandit::new(graph.clone(), arms)?;
        let cover = greedy_clique_cover(&graph).len();

        let mut dfl = DflSso::new(graph.clone());
        let mut moss = Moss::new(num_arms);
        let results = run_single_coupled(
            &bandit,
            &mut [&mut dfl, &mut moss],
            SingleScenario::SideObservation,
            horizon,
            500 + i as u64,
        );
        println!(
            "{:>8.2} {:>14} {:>14.1} {:>12.1} {:>14.0}",
            p,
            cover,
            results[0].total_regret(),
            results[1].total_regret(),
            bounds::theorem1_dfl_sso(horizon, num_arms, cover)
        );
    }
    println!(
        "\nAs the relation graph densifies, the clique cover shrinks and DFL-SSO's regret\n\
         falls towards zero, while MOSS (blind to side observations) stays flat."
    );
    Ok(())
}
