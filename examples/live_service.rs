//! Live service: a sharded engine hosting 64 experiments under concurrent
//! client traffic with delayed, out-of-order feedback.
//!
//! This is the serving-side counterpart of the batch examples: instead of
//! simulating one policy over a horizon, a [`ServeEngine`] hosts 64 tenants —
//! single-play and combinatorial experiments drawn from the four workload
//! presets — across 4 shards, while 8 client threads request decisions and
//! return the observed rewards late, in batches, and in reverse round order.
//! At the end one tenant is checkpointed, moved to a brand-new engine, and
//! resumed, and the engine's metrics report is printed.
//!
//! Run with: `cargo run --release --example live_service`

use netband::env::workloads;
use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TENANTS: usize = 64;
const CLIENTS: usize = 8;
const ROUNDS: usize = 150;
/// Feedback is withheld client-side in windows of this many rounds, then
/// delivered in reverse order — the delayed/out-of-order regime.
const FEEDBACK_WINDOW: usize = 25;

/// Builds tenant `index`: the four workload presets in rotation, single-play
/// presets hosted with DFL-SSO/SSR, combinatorial ones with DFL-CSR.
fn tenant_spec(index: usize) -> TenantSpec {
    let id = format!("exp-{index:02}");
    let seed = 7000 + index as u64;
    let mut rng = StdRng::seed_from_u64(300 + index as u64);
    match index % 4 {
        0 => {
            let w = workloads::paper_simulation(12, 0.35, &mut rng);
            let policy = DflSso::new(w.bandit.graph().clone());
            TenantSpec::single(id, w.bandit, policy, SingleScenario::SideObservation, seed)
        }
        1 => {
            let w = workloads::social_promotion(16, 3, &mut rng);
            let policy = DflSsr::new(w.bandit.graph().clone());
            TenantSpec::single(id, w.bandit, policy, SingleScenario::SideReward, seed)
        }
        2 => {
            let w = workloads::online_advertising(12, 3, &mut rng);
            let family = w.family().clone();
            let policy = DflCsr::new(w.bandit.graph().clone(), family.clone());
            TenantSpec::combinatorial(
                id,
                w.bandit,
                policy,
                family,
                CombinatorialScenario::SideObservation,
                seed,
            )
        }
        _ => {
            let w = workloads::channel_access(12, 3, 0.35, &mut rng);
            let family = w.family().clone();
            let policy = DflCsr::new(w.bandit.graph().clone(), family.clone());
            TenantSpec::combinatorial(
                id,
                w.bandit,
                policy,
                family,
                CombinatorialScenario::SideReward,
                seed,
            )
        }
    }
    .with_flush(FlushPolicy::batched(32))
}

/// One client session against one tenant: decide every round, hold the
/// revealed feedback in a window, deliver each window in reverse round order.
fn drive(engine: &ServeEngine, tenant: &str) {
    let mut held = Vec::with_capacity(FEEDBACK_WINDOW);
    for _ in 0..ROUNDS {
        let reply = engine.decide(tenant).expect("decide");
        held.push((reply.round, reply.feedback.expect("echoed feedback")));
        if held.len() >= FEEDBACK_WINDOW {
            for (round, event) in held.drain(..).rev() {
                engine.feedback(tenant, round, event).expect("feedback");
            }
        }
    }
    for (round, event) in held.drain(..).rev() {
        engine.feedback(tenant, round, event).expect("feedback");
    }
}

fn main() {
    let engine = ServeEngine::start(EngineConfig::new(4).with_queue_capacity(128));
    for index in 0..TENANTS {
        engine.create_tenant(tenant_spec(index)).expect("create");
    }
    println!(
        "engine up: {} shards, {TENANTS} tenants, {CLIENTS} client threads, \
         {ROUNDS} rounds each (feedback delayed in windows of {FEEDBACK_WINDOW})",
        engine.num_shards()
    );

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let engine = &engine;
            scope.spawn(move || {
                for index in (client..TENANTS).step_by(CLIENTS) {
                    drive(engine, &format!("exp-{index:02}"));
                }
            });
        }
    });
    engine.drain().expect("drain");
    let elapsed = start.elapsed();

    let report = engine.metrics().expect("metrics");
    println!(
        "\nserved {} decides + {} feedback events in {elapsed:.2?} ({:.0} decides/sec)",
        report.total_decides(),
        report.total_feedback_events(),
        report.total_decides() as f64 / elapsed.as_secs_f64()
    );
    println!("decide latency: {}", report.decide_latency());
    for (shard, metrics) in report.shards.iter().enumerate() {
        println!(
            "  shard {shard}: {} commands, {} rejected, feedback {}",
            metrics.commands, metrics.rejected, metrics.feedback_latency
        );
    }

    // A few per-tenant rows: time-averaged regret after ROUNDS rounds.
    println!("\nsample of hosted experiments:");
    for (id, metrics) in report.tenants.iter().step_by(17) {
        let snapshot = engine.snapshot_tenant(id).expect("snapshot");
        let result = snapshot.run_result();
        println!(
            "  {id}: {} decides, mean batch {:.1}, avg regret {:.3} ({})",
            metrics.decides,
            metrics.mean_batch(),
            result.average_regret(),
            snapshot.policy_name(),
        );
    }

    // Checkpoint one tenant, move it to a fresh engine, resume it there.
    let snapshot = engine.evict_tenant("exp-00").expect("evict");
    engine.shutdown();
    let second = ServeEngine::with_shards(1);
    second.restore_tenant(snapshot).expect("restore");
    drive(&second, "exp-00");
    second.drain().expect("drain");
    let resumed = second.evict_tenant("exp-00").expect("evict");
    println!(
        "\nexp-00 checkpointed at round {ROUNDS}, restored on a fresh engine, now at round {} \
         (avg regret {:.3})",
        resumed.round(),
        resumed.run_result().average_regret()
    );
    second.shutdown();
}
