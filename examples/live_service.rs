//! Live service: a sharded engine booted from a **declarative fleet spec**,
//! serving concurrent client traffic with delayed, out-of-order feedback.
//!
//! The whole multi-tenant fleet — 16 experiments rotating through the four
//! workload presets, each with its policy, seeds, and flush schedule — is
//! declared in the checked-in JSON document `examples/fleet.json`
//! (regenerate it with `cargo run --example gen_fleet`). This example parses
//! that document into a [`FleetSpec`], boots a 4-shard [`ServeEngine`] from
//! it with one `register_fleet` call, and then drives every tenant from 8
//! client threads over the **batched client API** ([`ServeClient`]): each
//! window of rounds is one `decide_many` round-trip, and the revealed
//! feedback travels back late, in batches, and in reverse round order via
//! `feedback_many`. At the end one tenant is checkpointed, moved to a
//! brand-new engine, and resumed, and the engine's metrics report is printed.
//!
//! Run with: `cargo run --release --example live_service`
//! (`NETBAND_QUICK=1` shrinks the round count for smoke runs.)

use netband::prelude::*;

const CLIENTS: usize = 8;
/// Feedback is withheld client-side in windows of this many rounds, then
/// delivered in reverse order — the delayed/out-of-order regime.
const FEEDBACK_WINDOW: usize = 25;

fn rounds() -> usize {
    if std::env::var("NETBAND_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        30
    } else {
        150
    }
}

/// One client session against one tenant over the batched API: each window of
/// rounds is one `decide_many` round-trip, and its revealed feedback goes
/// back — in reverse round order — as one `feedback_many` command. The
/// client's reply buffers are recycled across windows, so the steady state
/// allocates nothing.
fn drive(client: &mut ServeClient<'_>, tenant: &str, rounds: usize) {
    let mut replies = Vec::new();
    let mut remaining = rounds;
    while remaining > 0 {
        let window = remaining.min(FEEDBACK_WINDOW);
        client
            .decide_many(tenant, window, &mut replies)
            .expect("decide_many");
        let events = replies.iter_mut().rev().map(|slot| {
            let reply = slot.as_mut().expect("decide");
            (reply.round, reply.feedback.take().expect("echoed feedback"))
        });
        client.feedback_many(tenant, events).expect("feedback_many");
        remaining -= window;
    }
}

fn main() {
    let rounds = rounds();

    // The fleet is data: one JSON document declares every tenant's workload,
    // policy, seeds, and flush schedule.
    let fleet_path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/fleet.json");
    let text = std::fs::read_to_string(fleet_path).expect("read examples/fleet.json");
    let fleet = FleetSpec::from_json_text(&text).expect("parse fleet spec");
    let tenant_ids: Vec<String> = fleet.tenants.iter().map(|t| t.id.clone()).collect();

    let engine = ServeEngine::start(EngineConfig::new(4).with_queue_capacity(128));
    engine.register_fleet(&fleet).expect("register fleet");
    println!(
        "booted {:?} from {fleet_path}:\n  {} shards, {} tenants, {CLIENTS} client threads, \
         {rounds} rounds each (feedback delayed in windows of {FEEDBACK_WINDOW})",
        fleet.name,
        engine.num_shards(),
        tenant_ids.len(),
    );

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let engine = &engine;
            let ids = &tenant_ids;
            scope.spawn(move || {
                let mut client_handle = engine.client();
                for id in ids.iter().skip(client).step_by(CLIENTS) {
                    drive(&mut client_handle, id, rounds);
                }
            });
        }
    });
    engine.drain().expect("drain");
    let elapsed = start.elapsed();

    let report = engine.metrics().expect("metrics");
    println!(
        "\nserved {} decides + {} feedback events in {elapsed:.2?} ({:.0} decides/sec)",
        report.total_decides(),
        report.total_feedback_events(),
        report.total_decides() as f64 / elapsed.as_secs_f64()
    );
    println!("decide latency: {}", report.decide_latency());
    for (shard, metrics) in report.shards.iter().enumerate() {
        println!(
            "  shard {shard}: {} commands, {} rejected, feedback {}",
            metrics.commands, metrics.rejected, metrics.feedback_latency
        );
    }

    // A few per-tenant rows: time-averaged regret after the served rounds.
    println!("\nsample of hosted experiments:");
    for (id, metrics) in report.tenants.iter().step_by(5) {
        let snapshot = engine.snapshot_tenant(id).expect("snapshot");
        let result = snapshot.run_result();
        println!(
            "  {id}: {} decides, mean batch {:.1}, avg regret {:.3} ({})",
            metrics.decides,
            metrics.mean_batch(),
            result.average_regret(),
            snapshot.policy_name(),
        );
    }

    // Checkpoint one tenant, move it to a fresh engine, resume it there.
    let first = tenant_ids.first().expect("non-empty fleet").clone();
    let snapshot = engine.evict_tenant(&first).expect("evict");
    engine.shutdown();
    let second = ServeEngine::with_shards(1);
    second.restore_tenant(snapshot).expect("restore");
    let mut resumed_client = second.client();
    drive(&mut resumed_client, &first, rounds);
    drop(resumed_client);
    second.drain().expect("drain");
    let resumed = second.evict_tenant(&first).expect("evict");
    println!(
        "\n{first} checkpointed at round {rounds}, restored on a fresh engine, now at round {} \
         (avg regret {:.3})",
        resumed.round(),
        resumed.run_result().average_regret()
    );
    second.shutdown();
}
