//! Product promotion in a social network: single play with side reward.
//!
//! The paper's motivating story for side rewards: promoting a product to one
//! user also influences her friends' purchasing decisions, so the value of
//! targeting a user is the total purchase probability of her whole
//! neighbourhood. DFL-SSR (Algorithm 3) learns exactly that; MOSS, which chases
//! the single best individual buyer, targets the wrong user.
//!
//! The example also demonstrates that the SSR-optimal user (the best
//! *neighbourhood*) can differ from the SSO-optimal user (the best individual).
//!
//! Run with: `cargo run --release --example social_promotion`

use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), netband::env::EnvError> {
    let num_users = 60;
    let horizon = 6_000;
    let mut rng = StdRng::seed_from_u64(5);

    // A community-structured social network: three tight communities with a few
    // bridges between them.
    let graph = generators::planted_partition(num_users, 3, 0.35, 0.02, &mut rng);
    let arms = ArmSet::random_bernoulli(num_users, &mut rng);
    let bandit = NetworkedBandit::new(graph.clone(), arms)?;

    let best_individual = bandit.arms().best_arm().expect("non-empty instance");
    let best_neighborhood = bandit.best_single_side_arm().expect("non-empty instance");
    println!(
        "best individual buyer: user {best_individual} (mean {:.3})",
        bandit.means()[best_individual]
    );
    println!(
        "best neighbourhood to target: user {best_neighborhood} (neighbourhood value {:.3}, degree {})",
        bandit.side_reward_mean(best_neighborhood),
        graph.degree(best_neighborhood)
    );

    let mut dfl_ssr = DflSsr::new(graph.clone());
    let mut moss = Moss::new(num_users);
    let mut thompson = ThompsonBernoulli::new(num_users, 11);

    println!(
        "\n{:<12} {:>12} {:>12} {:>18}",
        "policy", "R_n", "R_n / n", "total purchases"
    );
    for run in [
        run_single(
            &bandit,
            &mut dfl_ssr,
            SingleScenario::SideReward,
            horizon,
            3,
        ),
        run_single(&bandit, &mut moss, SingleScenario::SideReward, horizon, 3),
        run_single(
            &bandit,
            &mut thompson,
            SingleScenario::SideReward,
            horizon,
            3,
        ),
    ] {
        println!(
            "{:<12} {:>12.1} {:>12.4} {:>18.1}",
            run.policy,
            run.total_regret(),
            run.average_regret(),
            run.total_reward
        );
    }
    if best_neighborhood == best_individual {
        println!(
            "\nIn this instance the best individual buyer also has the most valuable\n\
             neighbourhood (user {best_neighborhood}); DFL-SSR still wins because it\n\
             aggregates the whole neighbourhood's purchases when ranking users."
        );
    } else {
        println!(
            "\nDFL-SSR targets the most valuable neighbourhood (user {best_neighborhood}),\n\
             while direct-reward learners drift towards user {best_individual} and leave\n\
             the word-of-mouth value on the table."
        );
    }
    Ok(())
}
