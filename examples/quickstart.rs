//! Quickstart: single-play with side observation on a random social network.
//!
//! Builds the paper's basic setting — `K` arms connected by a relation graph,
//! rewards in `[0, 1]` — runs DFL-SSO (Algorithm 1) next to MOSS on the same
//! sample path, and prints how the time-averaged regret of both policies
//! evolves. This is Fig. 3 of the paper in miniature.
//!
//! Run with: `cargo run --release --example quickstart`

use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), netband::env::EnvError> {
    let num_arms = 50;
    let horizon = 5_000;
    let mut rng = StdRng::seed_from_u64(2024);

    // The environment: an Erdős–Rényi relation graph (friends observe each
    // other's feedback) over Bernoulli arms with unknown means.
    let graph = generators::erdos_renyi(num_arms, 0.3, &mut rng);
    let arms = ArmSet::random_bernoulli(num_arms, &mut rng);
    let bandit = NetworkedBandit::new(graph.clone(), arms)?;
    println!(
        "environment: {} arms, graph density {:.2}, best arm mean {:.3}",
        num_arms,
        graph.density(),
        bandit.best_single_direct_mean()
    );

    // Two policies on the same sample path: the paper's DFL-SSO and plain MOSS.
    let mut dfl = DflSso::new(graph.clone());
    let mut moss = Moss::new(num_arms);
    let results = run_single_coupled(
        &bandit,
        &mut [&mut dfl, &mut moss],
        SingleScenario::SideObservation,
        horizon,
        7,
    );

    println!("\n{:>8} {:>16} {:>16}", "t", "DFL-SSO R_t/t", "MOSS R_t/t");
    for &t in &[100usize, 500, 1_000, 2_500, 5_000] {
        let idx = t - 1;
        println!(
            "{:>8} {:>16.4} {:>16.4}",
            t,
            results[0].trace.time_averaged()[idx],
            results[1].trace.time_averaged()[idx]
        );
    }
    println!(
        "\nfinal accumulated regret: DFL-SSO {:.1} vs MOSS {:.1}",
        results[0].total_regret(),
        results[1].total_regret()
    );
    println!(
        "Theorem 1 bound with the greedy clique cover: {:.0}",
        bounds::theorem1_dfl_sso(horizon, num_arms, greedy_clique_cover(&graph).len())
    );
    Ok(())
}
