//! Runs any `ScenarioSpec` JSON document through the simulation engine.
//!
//! This is the command-line companion to `docs/SCENARIOS.md`: save any of the
//! cookbook's JSON blocks to a file and run it.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release --example run_scenario -- scenario.json
//! NETBAND_QUICK=1 cargo run --release --example run_scenario -- scenario.json
//! ```
//!
//! `NETBAND_QUICK=1` (or `--quick`) caps the horizon at 2 000 rounds and the
//! replication count at 3, so any document smoke-runs in seconds.

use netband::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .filter(|a| a != "--quick" && a != "-q")
        .ok_or("usage: run_scenario <scenario.json> [--quick]")?;
    let quick = std::env::args().any(|a| a == "--quick" || a == "-q")
        || std::env::var("NETBAND_QUICK").is_ok_and(|v| v == "1");

    let text = std::fs::read_to_string(&path)?;
    let mut spec = ScenarioSpec::from_json_text(&text)?;
    if quick {
        spec.horizon = spec.horizon.min(2_000);
        spec.replications = spec.replications.min(3);
    }

    println!("scenario   : {}", spec.name);
    println!("policy     : {}", spec.policy.display_name());
    println!(
        "horizon    : {} x {} replications",
        spec.horizon, spec.replications
    );
    let drifting = spec
        .workload
        .drift
        .as_ref()
        .is_some_and(|d| !d.is_trivial());
    println!(
        "world      : {}",
        if drifting {
            "drifting (regret vs the per-round dynamic oracle)"
        } else {
            "stationary"
        }
    );

    let avg = replicate_spec(&spec)?;
    let final_regret = avg.final_regret_mean();
    println!("final regret (mean over replications): {final_regret:.2}");
    println!(
        "per-round regret at the end of the horizon: {:.4}",
        final_regret / spec.horizon.max(1) as f64
    );
    Ok(())
}
