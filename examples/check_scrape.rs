//! CI scrape validator: read a saved `/metrics` body and hold it to the
//! exposition contract.
//!
//! The examples-smoke job boots `netband_server --obs-addr`, drives the fast
//! load-generator cell against it, curls the scrape endpoint into a file,
//! and hands the file to this example. It fails unless **every** line parses
//! under the strict exposition grammar and `netband_decides_total` reports
//! the traffic that was just served (a non-zero value) — an empty registry
//! or a malformed line is a CI failure, not a warning.
//!
//! Run with: `cargo run --release --example check_scrape -- scrape.txt`

use std::process::ExitCode;

use netband::obs::{parse_exposition, ExpositionLine};

fn run() -> Result<(), String> {
    let path = std::env::args()
        .nth(1)
        .ok_or("usage: check_scrape <scrape-body-file>")?;
    let body = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let lines = parse_exposition(&body).map_err(|e| format!("scrape does not parse: {e}"))?;

    let mut samples = 0usize;
    let mut decides = None;
    for line in &lines {
        if let ExpositionLine::Sample { name, value, .. } = line {
            samples += 1;
            if name == "netband_decides_total" {
                decides = Some(*value);
            }
        }
    }
    let decides = decides.ok_or("scrape lacks netband_decides_total")?;
    if decides <= 0.0 {
        return Err(format!(
            "netband_decides_total is {decides} — the endpoint did not see the loadgen traffic"
        ));
    }
    println!("scrape ok: {samples} samples, {decides} decides");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("check_scrape: {message}");
            ExitCode::FAILURE
        }
    }
}
