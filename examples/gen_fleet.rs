//! Regenerates `examples/fleet.json`, the checked-in fleet document that
//! `examples/live_service.rs` boots from.
//!
//! The fleet rotates through the four workload presets (paper simulation,
//! social promotion, online advertising, channel access), each hosted with
//! the policy the paper pairs with the application and a batched
//! delayed-feedback flush schedule — the declarative equivalent of the
//! hand-constructed tenants the live service used to build in code.
//!
//! Run with: `cargo run --example gen_fleet` (writes the file in place).

use netband::spec::{presets, FeedbackSpec, FleetSpec, FleetTenant, SPEC_VERSION};

const TENANTS: usize = 16;

fn main() {
    let mut tenants = Vec::with_capacity(TENANTS);
    for index in 0..TENANTS {
        let workload_seed = 300 + index as u64;
        let run_seed = 7_000 + index as u64;
        let mut scenario = match index % 4 {
            0 => presets::paper_simulation(12, 0.35, workload_seed),
            1 => presets::social_promotion(16, 3, workload_seed),
            2 => presets::online_advertising(12, 3, workload_seed),
            _ => presets::channel_access(12, 3, 0.35, workload_seed),
        };
        scenario.seed = run_seed;
        scenario.horizon = 150;
        scenario.replications = 1;
        scenario.feedback = FeedbackSpec::Batched { max_pending: 32 };
        tenants.push(FleetTenant {
            id: format!("exp-{index:02}"),
            scenario,
        });
    }
    let fleet = FleetSpec {
        version: SPEC_VERSION,
        name: "live-service demo fleet (4 presets x 4 instances)".into(),
        tenants,
    };
    fleet.validate().expect("generated fleet is valid");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/fleet.json");
    std::fs::write(path, fleet.to_json_pretty()).expect("write fleet.json");
    println!("wrote {} ({} tenants)", path, TENANTS);
}
