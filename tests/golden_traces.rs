//! Golden-trace equivalence suite.
//!
//! These tests pin the *exact* per-round behaviour of the four DFL policies on
//! a fixed Erdős–Rényi instance: every realised-regret and pseudo-regret value
//! of a seeded run is committed (as `f64` bit patterns, so the comparison is
//! bit-exact) under `tests/fixtures/`. Any refactor of the graph layout, the
//! estimators, the environment feedback path, or the simulation runners must
//! reproduce these traces bit for bit — floating-point summation order, RNG
//! stream consumption, and argmax tie-breaking are all part of the contract.
//!
//! The fixtures were generated from the map/Vec-based seed implementation and
//! gate the flat CSR hot-path core: if a "fast path" changes any of these bits
//! it is not the same algorithm any more.
//!
//! Regenerate (only when the semantics are *intentionally* changed) with:
//!
//! ```text
//! NETBAND_REGEN_GOLDEN=1 cargo test --test golden_traces
//! ```

use std::fs;
use std::path::PathBuf;

use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed of the RNG that materialises the fixture instance (graph + arms).
const INSTANCE_SEED: u64 = 42;
/// Seed of the reward stream of every golden run.
const RUN_SEED: u64 = 1007;
/// Horizon of the single-play golden runs.
const SINGLE_HORIZON: usize = 400;
/// Horizon of the combinatorial golden runs.
const COMB_HORIZON: usize = 250;
/// Arms in the fixture instance.
const NUM_ARMS: usize = 12;

/// The fixed Erdős–Rényi instance all golden traces run on.
fn fixture_instance() -> NetworkedBandit {
    let mut rng = StdRng::seed_from_u64(INSTANCE_SEED);
    let graph = generators::erdos_renyi(NUM_ARMS, 0.35, &mut rng);
    let arms = ArmSet::random_bernoulli(NUM_ARMS, &mut rng);
    NetworkedBandit::new(graph, arms).expect("fixture instance is well-formed")
}

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// A run's trace with every float captured as its exact bit pattern.
#[derive(Debug, PartialEq, Eq)]
struct GoldenTrace {
    policy: String,
    horizon: usize,
    optimal_mean_bits: u64,
    total_reward_bits: u64,
    realised_bits: Vec<u64>,
    pseudo_bits: Vec<u64>,
}

impl GoldenTrace {
    fn from_result(result: &RunResult) -> Self {
        GoldenTrace {
            policy: result.policy.clone(),
            horizon: result.horizon,
            optimal_mean_bits: result.optimal_mean.to_bits(),
            total_reward_bits: result.total_reward.to_bits(),
            realised_bits: result
                .trace
                .realised()
                .iter()
                .map(|x| x.to_bits())
                .collect(),
            pseudo_bits: result.trace.pseudo().iter().map(|x| x.to_bits()).collect(),
        }
    }

    fn to_json(&self) -> String {
        let join = |xs: &[u64]| {
            xs.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "{{\n  \"policy\": \"{}\",\n  \"horizon\": {},\n  \"optimal_mean_bits\": {},\n  \
             \"total_reward_bits\": {},\n  \"realised_bits\": [{}],\n  \"pseudo_bits\": [{}]\n}}\n",
            self.policy,
            self.horizon,
            self.optimal_mean_bits,
            self.total_reward_bits,
            join(&self.realised_bits),
            join(&self.pseudo_bits),
        )
    }

    fn from_json(text: &str) -> Self {
        GoldenTrace {
            policy: extract_string(text, "policy"),
            horizon: extract_u64(text, "horizon") as usize,
            optimal_mean_bits: extract_u64(text, "optimal_mean_bits"),
            total_reward_bits: extract_u64(text, "total_reward_bits"),
            realised_bits: extract_u64_array(text, "realised_bits"),
            pseudo_bits: extract_u64_array(text, "pseudo_bits"),
        }
    }
}

// ----- minimal JSON field extraction (the workspace vendors no serde_json) ---

fn field_start<'a>(text: &'a str, key: &str) -> &'a str {
    let marker = format!("\"{key}\":");
    let pos = text
        .find(&marker)
        .unwrap_or_else(|| panic!("fixture is missing key {key:?}"));
    text[pos + marker.len()..].trim_start()
}

fn extract_string(text: &str, key: &str) -> String {
    let rest = field_start(text, key);
    let rest = rest
        .strip_prefix('"')
        .unwrap_or_else(|| panic!("key {key:?} is not a string"));
    rest[..rest.find('"').expect("unterminated string")].to_owned()
}

fn extract_u64(text: &str, key: &str) -> u64 {
    let rest = field_start(text, key);
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|e| panic!("key {key:?} is not a u64: {e}"))
}

fn extract_u64_array(text: &str, key: &str) -> Vec<u64> {
    let rest = field_start(text, key);
    let rest = rest
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("key {key:?} is not an array"));
    let body = &rest[..rest.find(']').expect("unterminated array")];
    body.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("array element is not a u64"))
        .collect()
}

// ----- the four golden runs ------------------------------------------------

fn run_golden_sso() -> RunResult {
    let bandit = fixture_instance();
    let mut policy = DflSso::new(bandit.graph().clone());
    run_single(
        &bandit,
        &mut policy,
        SingleScenario::SideObservation,
        SINGLE_HORIZON,
        RUN_SEED,
    )
}

fn run_golden_ssr() -> RunResult {
    let bandit = fixture_instance();
    let mut policy = DflSsr::new(bandit.graph().clone());
    run_single(
        &bandit,
        &mut policy,
        SingleScenario::SideReward,
        SINGLE_HORIZON,
        RUN_SEED,
    )
}

fn run_golden_cso() -> RunResult {
    let bandit = fixture_instance();
    let family = StrategyFamily::independent_sets(2);
    let strategies = family
        .enumerate(bandit.graph())
        .expect("fixture family is enumerable");
    let mut policy = DflCso::from_strategies(bandit.graph(), strategies);
    run_combinatorial(
        &bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideObservation,
        COMB_HORIZON,
        RUN_SEED,
    )
    .expect("golden CSO run is valid")
}

fn run_golden_csr() -> RunResult {
    let bandit = fixture_instance();
    let family = StrategyFamily::at_most_m(NUM_ARMS, 3);
    let mut policy = DflCsr::new(bandit.graph().clone(), family.clone());
    run_combinatorial(
        &bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideReward,
        COMB_HORIZON,
        RUN_SEED,
    )
    .expect("golden CSR run is valid")
}

// ----- harness -------------------------------------------------------------

fn check_golden(name: &str, result: RunResult) {
    let actual = GoldenTrace::from_result(&result);
    let path = fixtures_dir().join(format!("golden_{name}.json"));
    if std::env::var_os("NETBAND_REGEN_GOLDEN").is_some() {
        fs::create_dir_all(fixtures_dir()).expect("create fixtures dir");
        fs::write(&path, actual.to_json()).expect("write fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with NETBAND_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    let expected = GoldenTrace::from_json(&text);
    assert_eq!(
        expected.horizon, actual.horizon,
        "{name}: horizon drifted from the committed fixture"
    );
    assert_eq!(
        expected.policy, actual.policy,
        "{name}: policy name drifted from the committed fixture"
    );
    assert_eq!(
        expected.optimal_mean_bits,
        actual.optimal_mean_bits,
        "{name}: the benchmark (optimal mean) is no longer bit-identical: {} vs {}",
        f64::from_bits(expected.optimal_mean_bits),
        f64::from_bits(actual.optimal_mean_bits),
    );
    for t in 0..expected.horizon {
        assert_eq!(
            expected.realised_bits[t],
            actual.realised_bits[t],
            "{name}: realised regret diverges at round {} ({} vs {})",
            t + 1,
            f64::from_bits(expected.realised_bits[t]),
            f64::from_bits(actual.realised_bits[t]),
        );
        assert_eq!(
            expected.pseudo_bits[t],
            actual.pseudo_bits[t],
            "{name}: pseudo regret diverges at round {} ({} vs {})",
            t + 1,
            f64::from_bits(expected.pseudo_bits[t]),
            f64::from_bits(actual.pseudo_bits[t]),
        );
    }
    assert_eq!(
        expected.total_reward_bits,
        actual.total_reward_bits,
        "{name}: total reward is no longer bit-identical: {} vs {}",
        f64::from_bits(expected.total_reward_bits),
        f64::from_bits(actual.total_reward_bits),
    );
}

#[test]
fn golden_trace_dfl_sso() {
    check_golden("dfl_sso", run_golden_sso());
}

#[test]
fn golden_trace_dfl_ssr() {
    check_golden("dfl_ssr", run_golden_ssr());
}

#[test]
fn golden_trace_dfl_cso() {
    check_golden("dfl_cso", run_golden_cso());
}

#[test]
fn golden_trace_dfl_csr() {
    check_golden("dfl_csr", run_golden_csr());
}

/// Golden runs are themselves deterministic: running one twice in-process must
/// give identical results (guards against hidden global state in policies or
/// the environment).
#[test]
fn golden_runs_are_reproducible_in_process() {
    let a = run_golden_sso();
    let b = run_golden_sso();
    assert_eq!(a, b);
    let c = run_golden_csr();
    let d = run_golden_csr();
    assert_eq!(c, d);
}
