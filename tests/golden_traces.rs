//! Golden-trace equivalence suite.
//!
//! These tests pin the *exact* per-round behaviour of the four DFL policies on
//! a fixed Erdős–Rényi instance: every realised-regret and pseudo-regret value
//! of a seeded run is committed (as `f64` bit patterns, so the comparison is
//! bit-exact) under `tests/fixtures/`. Any refactor of the graph layout, the
//! estimators, the environment feedback path, or the simulation runners must
//! reproduce these traces bit for bit — floating-point summation order, RNG
//! stream consumption, and argmax tie-breaking are all part of the contract.
//!
//! The fixtures were generated from the map/Vec-based seed implementation and
//! gate the flat CSR hot-path core: if a "fast path" changes any of these bits
//! it is not the same algorithm any more. The serving engine is held to the
//! same fixtures by `tests/serve_equivalence.rs`, through the shared machinery
//! in `tests/common/mod.rs`.
//!
//! Regenerate (only when the semantics are *intentionally* changed) with:
//!
//! ```text
//! NETBAND_REGEN_GOLDEN=1 cargo test --test golden_traces
//! ```

mod common;

use common::{
    check_golden, cso_family, csr_family, drift_scenario, fixture_instance, COMB_HORIZON, RUN_SEED,
    SINGLE_HORIZON,
};
use netband::prelude::*;

// ----- the four golden runs ------------------------------------------------

fn run_golden_sso() -> RunResult {
    let bandit = fixture_instance();
    let mut policy = DflSso::new(bandit.graph().clone());
    run_single(
        &bandit,
        &mut policy,
        SingleScenario::SideObservation,
        SINGLE_HORIZON,
        RUN_SEED,
    )
}

fn run_golden_ssr() -> RunResult {
    let bandit = fixture_instance();
    let mut policy = DflSsr::new(bandit.graph().clone());
    run_single(
        &bandit,
        &mut policy,
        SingleScenario::SideReward,
        SINGLE_HORIZON,
        RUN_SEED,
    )
}

fn run_golden_cso() -> RunResult {
    let bandit = fixture_instance();
    let family = cso_family();
    let strategies = family
        .enumerate(bandit.graph())
        .expect("fixture family is enumerable");
    let mut policy = DflCso::from_strategies(bandit.graph(), strategies);
    run_combinatorial(
        &bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideObservation,
        COMB_HORIZON,
        RUN_SEED,
    )
    .expect("golden CSO run is valid")
}

fn run_golden_csr() -> RunResult {
    let bandit = fixture_instance();
    let family = csr_family();
    let mut policy = DflCsr::new(bandit.graph().clone(), family.clone());
    run_combinatorial(
        &bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideReward,
        COMB_HORIZON,
        RUN_SEED,
    )
    .expect("golden CSR run is valid")
}

// ----- harness -------------------------------------------------------------

#[test]
fn golden_trace_dfl_sso() {
    check_golden("dfl_sso", run_golden_sso());
}

#[test]
fn golden_trace_dfl_ssr() {
    check_golden("dfl_ssr", run_golden_ssr());
}

#[test]
fn golden_trace_dfl_cso() {
    check_golden("dfl_cso", run_golden_cso());
}

#[test]
fn golden_trace_dfl_csr() {
    check_golden("dfl_csr", run_golden_csr());
}

/// The drifting golden run: the committed `drift_scenario.json` document
/// (CTS-D, gradual drift + one change point, dynamic-oracle scoring) through
/// the drifted combinatorial runner. The serving engine is held to the same
/// fixture by `tests/serve_equivalence.rs`.
#[test]
fn golden_trace_drift_cts() {
    let result = run_spec(&drift_scenario()).expect("drift scenario runs");
    check_golden("drift_cts", result);
}

/// Golden runs are themselves deterministic: running one twice in-process must
/// give identical results (guards against hidden global state in policies or
/// the environment).
#[test]
fn golden_runs_are_reproducible_in_process() {
    let a = run_golden_sso();
    let b = run_golden_sso();
    assert_eq!(a, b);
    let c = run_golden_csr();
    let d = run_golden_csr();
    assert_eq!(c, d);
}
