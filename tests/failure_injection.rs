//! Failure-injection and degenerate-configuration tests: the library must
//! behave predictably on empty graphs, single arms, point-mass rewards, huge
//! strategies, invalid pulls, and other corners a downstream user will
//! eventually hit.

use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn mismatched_graph_and_arms_are_rejected() {
    let graph = generators::path(4);
    let arms = ArmSet::bernoulli(&[0.5; 3]);
    let err = NetworkedBandit::new(graph, arms).unwrap_err();
    assert!(err.to_string().contains("4 vertices"));
}

#[test]
fn out_of_range_pulls_are_rejected_not_panicking() {
    let graph = generators::path(3);
    let bandit = NetworkedBandit::new(graph, ArmSet::linear_bernoulli(3)).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    assert!(bandit.try_pull_single(3, &mut rng).is_err());
    assert!(bandit.pull_strategy(&[0, 5], &mut rng).is_err());
    assert!(bandit.pull_strategy(&[], &mut rng).is_err());
}

#[test]
fn point_mass_rewards_give_exactly_zero_regret_once_converged() {
    // Deterministic rewards: after the forced exploration, DFL-SSO must lock
    // onto the best arm and accumulate no further regret.
    let graph = generators::complete(5);
    let arms: ArmSet = [0.1, 0.3, 0.5, 0.7, 0.9]
        .into_iter()
        .map(netband::env::distributions::Distribution::point_mass)
        .collect();
    let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
    let mut policy = DflSso::new(graph);
    let result = run_single(
        &bandit,
        &mut policy,
        SingleScenario::SideObservation,
        200,
        1,
    );
    // On a complete graph one pull observes everything, so at most the first
    // pull can be suboptimal.
    assert!(result.trace.total_pseudo() <= 0.8 + 1e-9);
    let tail: f64 = result.trace.pseudo()[1..].iter().sum();
    assert!(tail.abs() < 1e-9, "tail pseudo-regret {tail}");
}

#[test]
fn identical_arms_mean_every_policy_has_zero_pseudo_regret() {
    let graph = generators::erdos_renyi(10, 0.5, &mut StdRng::seed_from_u64(3));
    let arms = ArmSet::bernoulli(&[0.4; 10]);
    let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
    let mut policy = DflSso::new(graph);
    let result = run_single(
        &bandit,
        &mut policy,
        SingleScenario::SideObservation,
        300,
        4,
    );
    assert!(result.trace.total_pseudo().abs() < 1e-9);
}

#[test]
fn strategy_family_with_m_larger_than_k_still_works() {
    let graph = generators::edgeless(3);
    let family = StrategyFamily::at_most_m(3, 10);
    let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(3)).unwrap();
    let mut policy = DflCsr::new(graph.clone(), family.clone());
    let result = run_combinatorial(
        &bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideReward,
        200,
        5,
    )
    .unwrap();
    // The best strategy is all three arms; the policy should find it quickly.
    assert!(result.average_regret() < 0.5);
}

#[test]
fn exactly_m_with_infeasible_m_yields_an_empty_family() {
    let graph = generators::edgeless(3);
    let family = StrategyFamily::exactly_m(3, 7);
    assert_eq!(family.enumerate(&graph).unwrap().len(), 0);
    assert!(family
        .argmax_by_arm_weights(&[1.0, 1.0, 1.0], &graph)
        .is_none());
}

#[test]
fn single_arm_combinatorial_instance() {
    let graph = generators::edgeless(1);
    let family = StrategyFamily::at_most_m(1, 1);
    let bandit = NetworkedBandit::new(graph.clone(), ArmSet::bernoulli(&[0.6])).unwrap();
    let mut policy = DflCsr::new(graph, family.clone());
    let result = run_combinatorial(
        &bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideReward,
        100,
        6,
    )
    .unwrap();
    assert!(result.trace.total_pseudo().abs() < 1e-9);
}

#[test]
fn disconnected_graphs_are_handled_by_all_policies() {
    let graph = generators::disjoint_cliques(3, 4);
    let arms = ArmSet::linear_bernoulli(12);
    let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut sso = DflSso::new(graph.clone());
    let mut ssr = DflSsr::new(graph.clone());
    for t in 1..=100 {
        for policy in [&mut sso as &mut dyn SinglePlayPolicy, &mut ssr] {
            let arm = policy.select_arm(t);
            assert!(arm < 12);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
        }
    }
}

#[test]
fn workload_presets_run_end_to_end() {
    let mut rng = StdRng::seed_from_u64(8);
    let promo = netband::env::workloads::social_promotion(30, 3, &mut rng);
    let mut policy = DflSsr::new(promo.bandit.graph().clone());
    let result = run_single(
        &promo.bandit,
        &mut policy,
        SingleScenario::SideReward,
        500,
        9,
    );
    assert_eq!(result.trace.len(), 500);

    let ads = netband::env::workloads::online_advertising(20, 2, &mut rng);
    let family = ads.try_family().expect("combinatorial workload").clone();
    let mut policy = DflCsr::new(ads.bandit.graph().clone(), family.clone());
    let result = run_combinatorial(
        &ads.bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideReward,
        500,
        10,
    )
    .unwrap();
    assert!(result.total_reward > 0.0);

    let radio = netband::env::workloads::channel_access(12, 2, 0.3, &mut rng);
    let family = radio.try_family().expect("combinatorial workload").clone();
    let strategies = family.enumerate(radio.bandit.graph()).unwrap();
    let mut policy = DflCso::from_strategies(radio.bandit.graph(), strategies);
    let result = run_combinatorial(
        &radio.bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideObservation,
        500,
        11,
    )
    .unwrap();
    assert!(result.trace.pseudo().iter().all(|&r| r >= -1e-9));
}

#[test]
fn extreme_graph_shapes_do_not_break_the_heuristic_policies() {
    for graph in [
        generators::star(10),
        generators::complete(10),
        generators::edgeless(10),
        generators::cycle(10),
    ] {
        let arms = ArmSet::linear_bernoulli(10);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut gn = DflSsoGreedyNeighbor::new(graph);
        let result = run_single(&bandit, &mut gn, SingleScenario::SideObservation, 300, 12);
        assert_eq!(result.trace.len(), 300);
        assert!(result.average_regret() < 1.0);
    }
}

#[test]
fn exp3_and_softmax_survive_very_long_runs_without_overflow() {
    let graph = generators::edgeless(3);
    let bandit = NetworkedBandit::new(graph, ArmSet::bernoulli(&[0.0, 0.5, 1.0])).unwrap();
    let mut exp3 = Exp3::new(3, 0.9, 1);
    let mut softmax = netband::baselines::Softmax::new(3, 0.01, 1);
    let mut rng = StdRng::seed_from_u64(13);
    for t in 1..=20_000 {
        for policy in [&mut exp3 as &mut dyn SinglePlayPolicy, &mut softmax] {
            let arm = policy.select_arm(t);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
        }
    }
    // If weights overflowed, selections would become NaN-driven and constant 0.
    let arm = exp3.select_arm(20_001);
    assert!(arm < 3);
}
