//! Failure-injection and degenerate-configuration tests: the library must
//! behave predictably on empty graphs, single arms, point-mass rewards, huge
//! strategies, invalid pulls, and other corners a downstream user will
//! eventually hit.
//!
//! The second half is the durable-store **crash matrix**: engines killed
//! mid-run at adversarial rounds must recover their exact learning state from
//! disk (snapshot + WAL replay), mid-log corruption must fail recovery
//! loudly, and the disk eviction tier must be invisible to results.

mod common;

use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn mismatched_graph_and_arms_are_rejected() {
    let graph = generators::path(4);
    let arms = ArmSet::bernoulli(&[0.5; 3]);
    let err = NetworkedBandit::new(graph, arms).unwrap_err();
    assert!(err.to_string().contains("4 vertices"));
}

#[test]
fn out_of_range_pulls_are_rejected_not_panicking() {
    let graph = generators::path(3);
    let bandit = NetworkedBandit::new(graph, ArmSet::linear_bernoulli(3)).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    assert!(bandit.try_pull_single(3, &mut rng).is_err());
    assert!(bandit.pull_strategy(&[0, 5], &mut rng).is_err());
    assert!(bandit.pull_strategy(&[], &mut rng).is_err());
}

#[test]
fn point_mass_rewards_give_exactly_zero_regret_once_converged() {
    // Deterministic rewards: after the forced exploration, DFL-SSO must lock
    // onto the best arm and accumulate no further regret.
    let graph = generators::complete(5);
    let arms: ArmSet = [0.1, 0.3, 0.5, 0.7, 0.9]
        .into_iter()
        .map(netband::env::distributions::Distribution::point_mass)
        .collect();
    let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
    let mut policy = DflSso::new(graph);
    let result = run_single(
        &bandit,
        &mut policy,
        SingleScenario::SideObservation,
        200,
        1,
    );
    // On a complete graph one pull observes everything, so at most the first
    // pull can be suboptimal.
    assert!(result.trace.total_pseudo() <= 0.8 + 1e-9);
    let tail: f64 = result.trace.pseudo()[1..].iter().sum();
    assert!(tail.abs() < 1e-9, "tail pseudo-regret {tail}");
}

#[test]
fn identical_arms_mean_every_policy_has_zero_pseudo_regret() {
    let graph = generators::erdos_renyi(10, 0.5, &mut StdRng::seed_from_u64(3));
    let arms = ArmSet::bernoulli(&[0.4; 10]);
    let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
    let mut policy = DflSso::new(graph);
    let result = run_single(
        &bandit,
        &mut policy,
        SingleScenario::SideObservation,
        300,
        4,
    );
    assert!(result.trace.total_pseudo().abs() < 1e-9);
}

#[test]
fn strategy_family_with_m_larger_than_k_still_works() {
    let graph = generators::edgeless(3);
    let family = StrategyFamily::at_most_m(3, 10);
    let bandit = NetworkedBandit::new(graph.clone(), ArmSet::linear_bernoulli(3)).unwrap();
    let mut policy = DflCsr::new(graph.clone(), family.clone());
    let result = run_combinatorial(
        &bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideReward,
        200,
        5,
    )
    .unwrap();
    // The best strategy is all three arms; the policy should find it quickly.
    assert!(result.average_regret() < 0.5);
}

#[test]
fn exactly_m_with_infeasible_m_yields_an_empty_family() {
    let graph = generators::edgeless(3);
    let family = StrategyFamily::exactly_m(3, 7);
    assert_eq!(family.enumerate(&graph).unwrap().len(), 0);
    assert!(family
        .argmax_by_arm_weights(&[1.0, 1.0, 1.0], &graph)
        .is_none());
}

#[test]
fn single_arm_combinatorial_instance() {
    let graph = generators::edgeless(1);
    let family = StrategyFamily::at_most_m(1, 1);
    let bandit = NetworkedBandit::new(graph.clone(), ArmSet::bernoulli(&[0.6])).unwrap();
    let mut policy = DflCsr::new(graph, family.clone());
    let result = run_combinatorial(
        &bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideReward,
        100,
        6,
    )
    .unwrap();
    assert!(result.trace.total_pseudo().abs() < 1e-9);
}

#[test]
fn disconnected_graphs_are_handled_by_all_policies() {
    let graph = generators::disjoint_cliques(3, 4);
    let arms = ArmSet::linear_bernoulli(12);
    let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut sso = DflSso::new(graph.clone());
    let mut ssr = DflSsr::new(graph.clone());
    for t in 1..=100 {
        for policy in [&mut sso as &mut dyn SinglePlayPolicy, &mut ssr] {
            let arm = policy.select_arm(t);
            assert!(arm < 12);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
        }
    }
}

#[test]
fn workload_presets_run_end_to_end() {
    let mut rng = StdRng::seed_from_u64(8);
    let promo = netband::env::workloads::social_promotion(30, 3, &mut rng);
    let mut policy = DflSsr::new(promo.bandit.graph().clone());
    let result = run_single(
        &promo.bandit,
        &mut policy,
        SingleScenario::SideReward,
        500,
        9,
    );
    assert_eq!(result.trace.len(), 500);

    let ads = netband::env::workloads::online_advertising(20, 2, &mut rng);
    let family = ads.try_family().expect("combinatorial workload").clone();
    let mut policy = DflCsr::new(ads.bandit.graph().clone(), family.clone());
    let result = run_combinatorial(
        &ads.bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideReward,
        500,
        10,
    )
    .unwrap();
    assert!(result.total_reward > 0.0);

    let radio = netband::env::workloads::channel_access(12, 2, 0.3, &mut rng);
    let family = radio.try_family().expect("combinatorial workload").clone();
    let strategies = family.enumerate(radio.bandit.graph()).unwrap();
    let mut policy = DflCso::from_strategies(radio.bandit.graph(), strategies);
    let result = run_combinatorial(
        &radio.bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideObservation,
        500,
        11,
    )
    .unwrap();
    assert!(result.trace.pseudo().iter().all(|&r| r >= -1e-9));
}

#[test]
fn extreme_graph_shapes_do_not_break_the_heuristic_policies() {
    for graph in [
        generators::star(10),
        generators::complete(10),
        generators::edgeless(10),
        generators::cycle(10),
    ] {
        let arms = ArmSet::linear_bernoulli(10);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut gn = DflSsoGreedyNeighbor::new(graph);
        let result = run_single(&bandit, &mut gn, SingleScenario::SideObservation, 300, 12);
        assert_eq!(result.trace.len(), 300);
        assert!(result.average_regret() < 1.0);
    }
}

#[test]
fn exp3_and_softmax_survive_very_long_runs_without_overflow() {
    let graph = generators::edgeless(3);
    let bandit = NetworkedBandit::new(graph, ArmSet::bernoulli(&[0.0, 0.5, 1.0])).unwrap();
    let mut exp3 = Exp3::new(3, 0.9, 1);
    let mut softmax = netband::baselines::Softmax::new(3, 0.01, 1);
    let mut rng = StdRng::seed_from_u64(13);
    for t in 1..=20_000 {
        for policy in [&mut exp3 as &mut dyn SinglePlayPolicy, &mut softmax] {
            let arm = policy.select_arm(t);
            let fb = bandit.pull_single(arm, &mut rng);
            policy.update(t, &fb);
        }
    }
    // If weights overflowed, selections would become NaN-driven and constant 0.
    let arm = exp3.select_arm(20_001);
    assert!(arm < 3);
}

// ===== durable store: the crash matrix ======================================

mod durability {
    use std::collections::HashSet;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::common::{
        assert_golden, drift_scenario, golden_specs, DRIFT_CHANGE_ROUND, DRIFT_HORIZON,
    };
    use netband::prelude::*;
    use netband::serve::TraceKind;

    /// A fresh per-test data directory, removed on drop. Crashed engines leak
    /// their file handles (like a killed process would); unlinking under them
    /// is fine on POSIX.
    struct DataDir(PathBuf);

    impl DataDir {
        fn new(tag: &str) -> DataDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "netband_crash_{tag}_{}_{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::remove_dir_all(&dir).ok();
            DataDir(dir)
        }

        /// A single-shard engine config over this directory with a small
        /// compaction threshold, so the crash matrix exercises *both*
        /// recovery inputs (a committed snapshot set and a WAL tail) rather
        /// than only a genesis log.
        fn engine_config(&self) -> EngineConfig {
            EngineConfig::new(1).with_store(StoreConfig::new(&self.0).with_compact_every(97))
        }
    }

    impl Drop for DataDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    /// Drives `rounds` closed-loop rounds: decide, then return the echoed
    /// feedback for the same round (the golden-trace serving discipline).
    fn serve_rounds(engine: &ServeEngine, tenant: &str, rounds: usize) {
        for _ in 0..rounds {
            let reply = engine.decide(tenant).expect("decide");
            let event = reply.feedback.expect("echoed feedback");
            engine
                .feedback(tenant, reply.round, event)
                .expect("feedback");
        }
    }

    /// Simulates `kill -9` at a command boundary: waits until everything
    /// enqueued has been executed (the metrics call is a queue barrier that
    /// writes nothing durable), then abandons the engine — no shutdown, no
    /// drain, no final fsync. Threads and file handles are leaked exactly as
    /// a killed process would leave them.
    fn kill(engine: ServeEngine) {
        engine.metrics().expect("barrier before the crash");
        std::mem::forget(engine);
    }

    /// Kills an engine serving `spec` after `crash_round` rounds, recovers a
    /// second engine from the same directory, finishes the horizon there, and
    /// asserts the stitched run reproduces the committed fixture bit for bit.
    fn crash_recover_and_check(fixture: &'static str, spec: &ScenarioSpec, crash_round: usize) {
        let dir = DataDir::new(fixture);
        let first = ServeEngine::start(dir.engine_config());
        first
            .register_tenant_spec(&RegisterTenantSpec::new(fixture, spec.clone()))
            .expect("register from spec");
        serve_rounds(&first, fixture, crash_round);
        kill(first);

        let second = ServeEngine::try_start(dir.engine_config()).expect("recover from disk");
        let telemetry = second.telemetry(fixture).expect("recovered tenant exists");
        assert_eq!(
            telemetry.round, crash_round as u64,
            "{fixture}: recovery must resume at the crash round, not reset"
        );
        let store = second
            .store_metrics()
            .expect("store metrics")
            .expect("engine has a store");
        // Early crashes recover purely from the WAL (no snapshot committed
        // yet); later ones load snapshot tenants plus a log tail. Either way
        // recovery must have read *something* back.
        assert!(
            store.recovered_records + store.recovered_tenants >= 1,
            "{fixture}: recovery read nothing from disk"
        );
        serve_rounds(&second, fixture, spec.horizon - crash_round);
        let snapshot = second.evict_tenant(fixture).expect("evict");
        second.shutdown();
        assert_golden(fixture, &snapshot.run_result());
    }

    /// The crash matrix over the four golden DFL traces: kill at the first
    /// round, mid-horizon (past the compaction threshold, so recovery loads a
    /// snapshot *and* replays a WAL tail), and the second-to-last round.
    #[test]
    fn killed_engines_recover_every_golden_trace_bit_exact() {
        for (fixture, spec) in golden_specs() {
            for crash_round in [1, spec.horizon / 2, spec.horizon - 1] {
                crash_recover_and_check(fixture, &spec, crash_round);
            }
        }
    }

    /// The drifting fixture's crash matrix brackets the change point: killed
    /// one round before it, exactly on it, and at the horizon's edge, the
    /// recovered tenant must cross (or have crossed) the change point itself
    /// and still match the fixture — drift is a pure function of the
    /// recovered round counter.
    #[test]
    fn killed_drifting_engines_recover_across_the_change_point() {
        let spec = drift_scenario();
        let change = DRIFT_CHANGE_ROUND as usize;
        for crash_round in [1, change - 1, change, DRIFT_HORIZON - 1] {
            crash_recover_and_check("drift_cts", &spec, crash_round);
        }
    }

    /// Mid-log corruption is *not* a torn tail: a complete WAL frame whose
    /// CRC no longer matches must fail recovery loudly instead of silently
    /// truncating acknowledged work.
    #[test]
    fn corrupted_wal_frames_fail_recovery_loudly() {
        let dir = DataDir::new("crc");
        let (fixture, spec) = golden_specs().remove(0);
        let engine = ServeEngine::start(dir.engine_config());
        engine
            .register_tenant_spec(&RegisterTenantSpec::new(fixture, spec))
            .expect("register from spec");
        serve_rounds(&engine, fixture, 20);
        kill(engine);

        let shard_dir = dir.0.join("shard-0");
        let wal = std::fs::read_dir(&shard_dir)
            .expect("shard dir exists")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
            })
            .expect("shard WAL exists");
        let mut bytes = std::fs::read(&wal).expect("read WAL");
        assert!(bytes.len() > 64, "WAL unexpectedly small");
        // Flip one payload byte inside the first record — a complete frame,
        // nowhere near the tail.
        bytes[40] ^= 0x01;
        std::fs::write(&wal, &bytes).expect("write corrupted WAL");

        let err = ServeEngine::try_start(dir.engine_config())
            .err()
            .expect("recovery over a corrupt log must fail");
        match &err {
            ServeError::Store(message) => assert!(
                message.contains("corrupt") || message.contains("store"),
                "unexpected store error text: {message}"
            ),
            other => panic!("expected ServeError::Store, got {other:?}"),
        }
    }

    // ===== the disk eviction tier ===========================================

    /// 64 tenants on a 4-shard engine whose resident cap (8 per shard) is
    /// half its tenant load, under interleaved round-robin traffic: every
    /// decision and the final telemetry must be bit-exact against an
    /// uncapped, store-less reference engine, and the trace ring must show
    /// the evicted/rehydrated churn that made that possible.
    #[test]
    fn eviction_tier_is_bit_exact_against_an_uncapped_reference() {
        let dir = DataDir::new("evict");
        let (_, base) = golden_specs().remove(0);
        let capped = ServeEngine::start(
            EngineConfig::new(4)
                .with_trace_capacity(1 << 16)
                .with_store(StoreConfig::new(&dir.0).with_resident_cap(8)),
        );
        let reference = ServeEngine::start(EngineConfig::new(4));
        let ids: Vec<String> = (0..64).map(|i| format!("tenant-{i:02}")).collect();
        for (i, id) in ids.iter().enumerate() {
            let mut spec = base.clone();
            spec.seed = spec.seed.wrapping_add(i as u64); // distinct reward streams
            for engine in [&capped, &reference] {
                engine
                    .register_tenant_spec(&RegisterTenantSpec::new(id, spec.clone()))
                    .expect("register from spec");
            }
        }

        for _ in 0..30 {
            for id in &ids {
                let a = capped.decide(id).expect("capped decide");
                let b = reference.decide(id).expect("reference decide");
                assert_eq!(a.round, b.round, "{id}: round skew");
                assert_eq!(a.decision, b.decision, "{id}: decision diverged");
                assert_eq!(
                    a.reward.to_bits(),
                    b.reward.to_bits(),
                    "{id}: reward diverged at round {}",
                    a.round
                );
                let ea = a.feedback.expect("echoed feedback");
                let eb = b.feedback.expect("echoed feedback");
                capped.feedback(id, a.round, ea).expect("capped feedback");
                reference
                    .feedback(id, b.round, eb)
                    .expect("reference feedback");
            }
        }

        // Telemetry parity, floats compared as bit patterns.
        let ta = capped.telemetry_all().expect("capped telemetry");
        let tb = reference.telemetry_all().expect("reference telemetry");
        assert_eq!(ta.len(), tb.len());
        for (x, y) in ta.iter().zip(&tb) {
            assert_eq!(x, y, "telemetry diverged for {}", x.id);
            assert_eq!(
                x.total_reward.to_bits(),
                y.total_reward.to_bits(),
                "{}",
                x.id
            );
            assert_eq!(
                x.optimal_reward.to_bits(),
                y.optimal_reward.to_bits(),
                "{}",
                x.id
            );
            let means: Vec<u64> = x.arm_means.iter().map(|m| m.to_bits()).collect();
            let expected: Vec<u64> = y.arm_means.iter().map(|m| m.to_bits()).collect();
            assert_eq!(means, expected, "{}: estimator bits diverged", x.id);
        }

        // The tier actually churned, and the churn is observable: counters…
        let store = capped
            .store_metrics()
            .expect("store metrics")
            .expect("engine has a store");
        assert!(store.evictions > 0, "no evictions under a halved cap");
        assert!(store.rehydrations > 0, "no rehydrations under churn");
        // …and paired trace events.
        let trace = capped.trace().expect("trace");
        let mut evicted: HashSet<String> = HashSet::new();
        let mut rehydrated: HashSet<String> = HashSet::new();
        for event in trace.shards.iter().flatten() {
            match event.kind {
                TraceKind::TenantEvicted => {
                    evicted.insert(event.tenant.as_str().to_owned());
                }
                TraceKind::TenantRehydrated => {
                    assert!(
                        evicted.contains(event.tenant.as_str()),
                        "{} rehydrated before ever being evicted",
                        event.tenant
                    );
                    rehydrated.insert(event.tenant.as_str().to_owned());
                }
                _ => {}
            }
        }
        assert!(!rehydrated.is_empty(), "no evicted/rehydrated pairs traced");
        capped.shutdown();
        reference.shutdown();
    }

    /// The durable-store counters reach the Prometheus-style exposition only
    /// when the engine actually has a store: a durable scrape carries the
    /// `netband_store_*` families with live values, an in-memory scrape
    /// carries none — dashboards can tell "no persistence" from "idle".
    #[test]
    fn store_counters_reach_the_exposition_only_when_durable() {
        use netband::net::render_metrics;
        use netband::obs::ExpositionLine;

        fn store_samples(engine: &ServeEngine) -> Vec<(String, f64)> {
            let stats = NetStats::new();
            let text = render_metrics(engine, &stats).expect("render exposition");
            netband::obs::parse_exposition(&text)
                .expect("exposition parses")
                .into_iter()
                .filter_map(|line| match line {
                    ExpositionLine::Sample { name, value, .. }
                        if name.starts_with("netband_store_") =>
                    {
                        Some((name, value))
                    }
                    _ => None,
                })
                .collect()
        }

        let dir = DataDir::new("scrape");
        let (fixture, spec) = golden_specs().remove(0);
        let durable = ServeEngine::start(dir.engine_config());
        durable
            .register_tenant_spec(&RegisterTenantSpec::new(fixture, spec.clone()))
            .expect("register from spec");
        serve_rounds(&durable, fixture, 8);

        let samples = store_samples(&durable);
        for family in [
            "netband_store_wal_appends_total",
            "netband_store_fsyncs_total",
            "netband_store_wal_bytes",
            "netband_store_compactions_total",
            "netband_store_evictions_total",
            "netband_store_rehydrations_total",
            "netband_store_recovered_records_total",
            "netband_store_recovered_tenants_total",
        ] {
            assert!(
                samples.iter().any(|(name, _)| name == family),
                "{family} missing from the durable scrape"
            );
        }
        let appends = samples
            .iter()
            .find(|(name, _)| name == "netband_store_wal_appends_total")
            .map(|(_, value)| *value)
            .unwrap();
        // register + 8 × (decide + feedback) = 17 logged mutations.
        assert_eq!(appends, 17.0, "WAL append counter out of step");
        durable.shutdown();

        let in_memory = ServeEngine::start(EngineConfig::new(1));
        assert!(
            store_samples(&in_memory).is_empty(),
            "in-memory engines must not expose netband_store_* families"
        );
        in_memory.shutdown();
    }
}
