//! Serving-engine golden equivalence suite.
//!
//! The correctness anchor of `netband-serve`: a single-shard engine with
//! immediate per-decide feedback must reproduce the committed
//! `tests/fixtures/golden_*.json` per-round regret traces of all four DFL
//! policies **f64-bit-exactly**. The engine decomposes a simulated round into
//! decide (select + pull + regret record) and feedback ingestion (queue +
//! in-round-order flush into the policy); with [`FlushPolicy::immediate`] that
//! decomposition must be the very same math as the batch runner — summation
//! order, RNG stream consumption and argmax tie-breaking included. These tests
//! never regenerate fixtures; they only compare.

mod common;

use common::{
    assert_golden, cso_family, csr_family, drift_scenario, fixture_instance, GoldenTrace,
    COMB_HORIZON, DRIFT_CHANGE_ROUND, DRIFT_HORIZON, RUN_SEED, SINGLE_HORIZON,
};
use netband::prelude::*;
use proptest::prelude::*;

/// Builds the four golden tenants, configured exactly like the batch runs:
/// same instance, same policies, same scenarios, same reward-stream seed,
/// immediate feedback application.
fn golden_specs() -> Vec<(&'static str, usize, TenantSpec)> {
    let bandit = fixture_instance();

    let sso = TenantSpec::single(
        "dfl_sso",
        bandit.clone(),
        DflSso::new(bandit.graph().clone()),
        SingleScenario::SideObservation,
        RUN_SEED,
    );

    let ssr = TenantSpec::single(
        "dfl_ssr",
        bandit.clone(),
        DflSsr::new(bandit.graph().clone()),
        SingleScenario::SideReward,
        RUN_SEED,
    );

    let family = cso_family();
    let strategies = family
        .enumerate(bandit.graph())
        .expect("fixture family is enumerable");
    let cso = TenantSpec::combinatorial(
        "dfl_cso",
        bandit.clone(),
        DflCso::from_strategies(bandit.graph(), strategies),
        family,
        CombinatorialScenario::SideObservation,
        RUN_SEED,
    );

    let family = csr_family();
    let csr = TenantSpec::combinatorial(
        "dfl_csr",
        bandit.clone(),
        DflCsr::new(bandit.graph().clone(), family.clone()),
        family,
        CombinatorialScenario::SideReward,
        RUN_SEED,
    );

    vec![
        ("dfl_sso", SINGLE_HORIZON, sso),
        ("dfl_ssr", SINGLE_HORIZON, ssr),
        ("dfl_cso", COMB_HORIZON, cso),
        ("dfl_csr", COMB_HORIZON, csr),
    ]
    .into_iter()
    .map(|(name, horizon, spec)| (name, horizon, spec.with_flush(FlushPolicy::immediate())))
    .collect()
}

/// Serves `horizon` closed-loop rounds for `tenant`: every decide's revealed
/// feedback is routed straight back into the engine.
fn serve_closed_loop(engine: &ServeEngine, tenant: &str, horizon: usize) {
    for _ in 0..horizon {
        let reply = engine.decide(tenant).expect("decide");
        let event = reply.feedback.expect("golden tenants echo their feedback");
        engine
            .feedback(tenant, reply.round, event)
            .expect("feedback");
    }
}

/// One tenant at a time on a single-shard engine: each run must be
/// bit-identical to its committed fixture.
#[test]
fn single_shard_engine_reproduces_all_golden_traces() {
    for (name, horizon, spec) in golden_specs() {
        let engine = ServeEngine::with_shards(1);
        engine.create_tenant(spec).expect("create tenant");
        serve_closed_loop(&engine, name, horizon);
        let snapshot = engine.evict_tenant(name).expect("evict tenant");
        assert_eq!(snapshot.round(), horizon as u64, "{name}");
        assert_golden(name, &snapshot.run_result());
        engine.shutdown();
    }
}

/// All four golden tenants hosted on the *same* single-shard engine, decides
/// interleaved round-robin: tenant state is fully independent, so the
/// interleaving must not perturb a single bit of any trace.
#[test]
fn interleaved_tenants_on_one_shard_stay_bit_exact() {
    let engine = ServeEngine::with_shards(1);
    let specs = golden_specs();
    let schedule: Vec<(&str, usize)> = specs
        .iter()
        .map(|(name, horizon, _)| (*name, *horizon))
        .collect();
    for (_, _, spec) in specs {
        engine.create_tenant(spec).expect("create tenant");
    }
    let max_horizon = schedule.iter().map(|&(_, h)| h).max().unwrap();
    for round in 0..max_horizon {
        for &(name, horizon) in &schedule {
            if round < horizon {
                let reply = engine.decide(name).expect("decide");
                let event = reply.feedback.expect("echoed feedback");
                engine.feedback(name, reply.round, event).expect("feedback");
            }
        }
    }
    for (name, horizon) in schedule {
        let snapshot = engine.evict_tenant(name).expect("evict tenant");
        assert_eq!(snapshot.round(), horizon as u64, "{name}");
        assert_golden(name, &snapshot.run_result());
    }
    engine.shutdown();
}

/// The batched client transport must be the same math as per-call serving:
/// at chunk size 1 with immediate flushing, `decide_many`/`feedback_many`
/// reproduce every committed fixture bit for bit.
#[test]
fn batched_client_reproduces_all_golden_traces_at_chunk_one() {
    for (name, horizon, spec) in golden_specs() {
        let engine = ServeEngine::with_shards(1);
        engine.create_tenant(spec).expect("create tenant");
        let mut client = engine.client();
        let mut replies = Vec::new();
        for _ in 0..horizon {
            client.decide_many(name, 1, &mut replies).expect("decide");
            let reply = replies[0].as_mut().expect("golden decide succeeds");
            let event = reply.feedback.take().expect("golden tenants echo");
            let round = reply.round;
            client
                .feedback_many(name, [(round, event)])
                .expect("feedback");
        }
        drop(client);
        let snapshot = engine.evict_tenant(name).expect("evict tenant");
        assert_eq!(snapshot.round(), horizon as u64, "{name}");
        assert_golden(name, &snapshot.run_result());
        engine.shutdown();
    }
}

/// Builds one delayed-feedback tenant (flush threshold `flush`) on a fresh
/// single-shard engine; `combinatorial` picks DFL-CSR over DFL-SSO so both
/// reply shapes (arm and strategy decisions) are exercised.
fn delayed_tenant_engine(combinatorial: bool, flush: usize) -> ServeEngine {
    let bandit = fixture_instance();
    let spec = if combinatorial {
        let family = csr_family();
        TenantSpec::combinatorial(
            "t",
            bandit.clone(),
            DflCsr::new(bandit.graph().clone(), family.clone()),
            family,
            CombinatorialScenario::SideReward,
            RUN_SEED,
        )
    } else {
        TenantSpec::single(
            "t",
            bandit.clone(),
            DflSso::new(bandit.graph().clone()),
            SingleScenario::SideObservation,
            RUN_SEED,
        )
    }
    .with_flush(FlushPolicy::batched(flush));
    let engine = ServeEngine::with_shards(1);
    engine.create_tenant(spec).expect("create tenant");
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A randomly chunked `decide_many`/`feedback_many` interleaving (chunk
    /// sizes 1..=8, each window optionally delivered in reverse round order)
    /// must produce f64-bit-identical decisions, regret traces, and tenant
    /// metrics to the equivalent per-call `decide`/`feedback` sequence —
    /// batching is transport, not semantics.
    #[test]
    fn chunked_batches_match_per_call_sequences(
        // (chunk size, reverse-delivery flag) per window; the vendored
        // proptest shim has no bool strategy, so flags travel as 0/1.
        plan in proptest::collection::vec((1usize..=8, 0usize..=1), 1..=10),
        flush in 1usize..=6,
        combinatorial in 0usize..=1,
    ) {
        let per_call = delayed_tenant_engine(combinatorial == 1, flush);
        let batched = delayed_tenant_engine(combinatorial == 1, flush);
        let mut client = batched.client();
        let mut replies = Vec::new();
        for &(chunk, reversed) in &plan {
            client.decide_many("t", chunk, &mut replies).expect("decide_many");
            prop_assert_eq!(replies.len(), chunk);
            for slot in &replies {
                let got = slot.as_ref().expect("batched decide succeeds");
                let want = per_call.decide("t").expect("per-call decide succeeds");
                prop_assert_eq!(got, &want);
                prop_assert_eq!(got.reward.to_bits(), want.reward.to_bits());
            }
            let mut window: Vec<(u64, FeedbackEvent)> = replies
                .iter_mut()
                .map(|slot| {
                    let reply = slot.as_mut().expect("batched decide succeeds");
                    (reply.round, reply.feedback.take().expect("echoed feedback"))
                })
                .collect();
            if reversed == 1 {
                window.reverse();
            }
            for (round, event) in &window {
                per_call.feedback("t", *round, event.clone()).expect("feedback");
            }
            let sent = client.feedback_many("t", window).expect("feedback_many");
            prop_assert_eq!(sent, chunk);
        }
        batched.drain().expect("drain");
        per_call.drain().expect("drain");
        prop_assert_eq!(
            batched.metrics().expect("metrics").tenants,
            per_call.metrics().expect("metrics").tenants
        );
        drop(client);
        let a = batched.evict_tenant("t").expect("evict");
        let b = per_call.evict_tenant("t").expect("evict");
        prop_assert_eq!(
            GoldenTrace::from_result(&a.run_result()),
            GoldenTrace::from_result(&b.run_result())
        );
        batched.shutdown();
        per_call.shutdown();
    }
}

/// A tenant registered **from the drifting scenario document** serves the
/// same trajectory as the drifted simulation runner: the engine recomputes
/// the per-round drifted means and the dynamic-oracle benchmark bit-exactly.
#[test]
fn spec_registered_drifting_tenant_reproduces_the_drift_fixture() {
    let spec = drift_scenario();
    let engine = ServeEngine::with_shards(1);
    engine
        .register_tenant_spec(&RegisterTenantSpec::new("drift_cts", spec))
        .expect("register drifting tenant from spec");
    serve_closed_loop(&engine, "drift_cts", DRIFT_HORIZON);
    let snapshot = engine.evict_tenant("drift_cts").expect("evict tenant");
    assert_eq!(snapshot.round(), DRIFT_HORIZON as u64);
    assert_golden("drift_cts", &snapshot.run_result());
    engine.shutdown();
}

/// Restart survival for nonstationary worlds: snapshot *before* the change
/// point, shut the engine down, restore onto a fresh engine, and let the
/// restored tenant cross the change point itself. Drift is a pure function of
/// the checkpointed round counter, so the stitched trace must still match the
/// fixture bit for bit.
#[test]
fn drifting_tenant_restart_across_the_change_point_stays_bit_exact() {
    let spec = drift_scenario();
    let first = ServeEngine::with_shards(1);
    first
        .register_tenant_spec(&RegisterTenantSpec::new("drift_cts", spec))
        .expect("register drifting tenant from spec");
    let before_change = (DRIFT_CHANGE_ROUND - 50) as usize;
    serve_closed_loop(&first, "drift_cts", before_change);
    let snapshot = first.snapshot_tenant("drift_cts").expect("snapshot tenant");
    assert!(
        snapshot.round() < DRIFT_CHANGE_ROUND,
        "snapshot must land before the change point"
    );
    first.shutdown();

    let second = ServeEngine::with_shards(1);
    second.restore_tenant(snapshot).expect("restore tenant");
    serve_closed_loop(&second, "drift_cts", DRIFT_HORIZON - before_change);
    let snapshot = second.evict_tenant("drift_cts").expect("evict tenant");
    assert_eq!(snapshot.round(), DRIFT_HORIZON as u64);
    assert_golden("drift_cts", &snapshot.run_result());
    second.shutdown();
}

/// Snapshot half-way, shut the engine down, restore onto a fresh engine, and
/// finish the run there: the stitched trace must still match the fixture bit
/// for bit (the restart-survival guarantee of tenant checkpoints).
#[test]
fn snapshot_restore_across_engine_restart_stays_bit_exact() {
    for (name, horizon, spec) in golden_specs() {
        let first = ServeEngine::with_shards(1);
        first.create_tenant(spec).expect("create tenant");
        let half = horizon / 2;
        serve_closed_loop(&first, name, half);
        let snapshot = first.snapshot_tenant(name).expect("snapshot tenant");
        first.shutdown();

        let second = ServeEngine::with_shards(1);
        second.restore_tenant(snapshot).expect("restore tenant");
        serve_closed_loop(&second, name, horizon - half);
        let snapshot = second.evict_tenant(name).expect("evict tenant");
        assert_eq!(snapshot.round(), horizon as u64, "{name}");
        assert_golden(name, &snapshot.run_result());
        second.shutdown();
    }
}
