//! Shared golden-trace machinery for the integration suites.
//!
//! The committed fixtures under `tests/fixtures/golden_*.json` pin the exact
//! per-round behaviour (every float as its bit pattern) of the four DFL
//! policies on one fixed Erdős–Rényi instance. Two suites consume them:
//!
//! * `tests/golden_traces.rs` — the batch simulation runners must reproduce
//!   the fixtures (the flat-core refactor gate).
//! * `tests/serve_equivalence.rs` — a single-shard `netband-serve` engine with
//!   immediate per-decide feedback must reproduce the *same* fixtures, proving
//!   the serving subsystem is the same math as the simulator.
//!
//! Keeping the fixture instance, the JSON codec, and the comparison in one
//! module guarantees both suites pin the same contract.

// Each integration-test binary compiles this module independently and uses a
// different subset of it.
#![allow(dead_code)]

use std::fs;
use std::path::PathBuf;

use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed of the RNG that materialises the fixture instance (graph + arms).
pub const INSTANCE_SEED: u64 = 42;
/// Seed of the reward stream of every golden run.
pub const RUN_SEED: u64 = 1007;
/// Horizon of the single-play golden runs.
pub const SINGLE_HORIZON: usize = 400;
/// Horizon of the combinatorial golden runs.
pub const COMB_HORIZON: usize = 250;
/// Arms in the fixture instance.
pub const NUM_ARMS: usize = 12;

/// The fixed Erdős–Rényi instance all golden traces run on.
pub fn fixture_instance() -> NetworkedBandit {
    let mut rng = StdRng::seed_from_u64(INSTANCE_SEED);
    let graph = generators::erdos_renyi(NUM_ARMS, 0.35, &mut rng);
    let arms = ArmSet::random_bernoulli(NUM_ARMS, &mut rng);
    NetworkedBandit::new(graph, arms).expect("fixture instance is well-formed")
}

/// The strategy family of the golden DFL-CSO run.
pub fn cso_family() -> StrategyFamily {
    StrategyFamily::independent_sets(2)
}

/// The strategy family of the golden DFL-CSR run.
pub fn csr_family() -> StrategyFamily {
    StrategyFamily::at_most_m(NUM_ARMS, 3)
}

/// Shard count for the suites whose assertions must hold at *any* shard
/// count. Tenants are shard-pinned, so serve/net behaviour may not depend on
/// how many shard workers exist; CI exercises both regimes by exporting
/// `NETBAND_TEST_SHARDS` once above `available_parallelism` and once at 1,
/// and this helper applies the override wherever a suite opts in.
pub fn test_shards(default: usize) -> usize {
    match std::env::var("NETBAND_TEST_SHARDS") {
        Ok(v) => {
            let shards: usize = v
                .trim()
                .parse()
                .unwrap_or_else(|e| panic!("NETBAND_TEST_SHARDS={v:?} is not a shard count: {e}"));
            assert!(shards >= 1, "NETBAND_TEST_SHARDS must be at least 1");
            shards
        }
        Err(_) => default,
    }
}

pub fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

// ----- the golden scenarios as spec documents --------------------------------
//
// Shared by `tests/spec_golden.rs` (spec pipeline ≡ hand-wired runners) and
// `tests/net_equivalence.rs` (TCP round trip ≡ in-process engine): one set of
// documents, three execution paths, all pinned to the same fixtures.

/// The fixture instance (ER graph, uniform-mean Bernoulli arms) as a
/// declarative workload document.
pub fn golden_workload(family: Option<FamilySpec>) -> WorkloadSpec {
    WorkloadSpec {
        graph: GraphSpec::ErdosRenyi {
            num_arms: NUM_ARMS,
            edge_prob: 0.35,
        },
        arms: ArmsSpec::UniformMeanBernoulli { num_arms: NUM_ARMS },
        family,
        drift: None,
        seed: INSTANCE_SEED,
    }
}

/// One golden scenario document on the fixture workload.
pub fn golden_scenario(
    name: &str,
    policy: PolicySpec,
    family: Option<FamilySpec>,
    side_bonus: SideBonus,
    horizon: usize,
) -> ScenarioSpec {
    ScenarioSpec {
        version: SPEC_VERSION,
        name: name.to_owned(),
        workload: golden_workload(family),
        policy,
        side_bonus,
        horizon,
        replications: 1,
        seed: RUN_SEED,
        feedback: FeedbackSpec::Immediate,
    }
}

/// All four golden DFL scenarios, keyed by their fixture name.
pub fn golden_specs() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "dfl_sso",
            golden_scenario(
                "golden/dfl-sso",
                PolicySpec::DflSso,
                None,
                SideBonus::Observation,
                SINGLE_HORIZON,
            ),
        ),
        (
            "dfl_ssr",
            golden_scenario(
                "golden/dfl-ssr",
                PolicySpec::DflSsr,
                None,
                SideBonus::Reward,
                SINGLE_HORIZON,
            ),
        ),
        (
            "dfl_cso",
            golden_scenario(
                "golden/dfl-cso",
                PolicySpec::DflCso,
                Some(FamilySpec::IndependentSets { max_size: 2 }),
                SideBonus::Observation,
                COMB_HORIZON,
            ),
        ),
        (
            "dfl_csr",
            golden_scenario(
                "golden/dfl-csr",
                PolicySpec::DflCsr,
                Some(FamilySpec::AtMostM { m: 3 }),
                SideBonus::Reward,
                COMB_HORIZON,
            ),
        ),
    ]
}

/// Horizon of the drifting golden run (`tests/fixtures/drift_scenario.json`).
pub const DRIFT_HORIZON: usize = 300;
/// Change-point round of the drifting golden scenario; restart tests snapshot
/// strictly before it so the restored tenant crosses the change point itself.
pub const DRIFT_CHANGE_ROUND: u64 = 150;

/// The committed drifting scenario document: a CTS-D policy on the fixture
/// workload with gradual drift plus one mid-horizon change point. One JSON
/// document drives the drifted simulation runner, a serving tenant, and the
/// restart-across-the-change-point test — all pinned to the same
/// `golden_drift_cts.json` trace.
pub fn drift_scenario() -> ScenarioSpec {
    let path = fixtures_dir().join("drift_scenario.json");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing drift scenario {} ({e})", path.display()));
    let spec = ScenarioSpec::from_json_text(&text)
        .unwrap_or_else(|e| panic!("drift scenario document no longer parses: {e}"));
    assert_eq!(spec.horizon, DRIFT_HORIZON, "drift fixture horizon drifted");
    spec
}

/// A run's trace with every float captured as its exact bit pattern.
#[derive(Debug, PartialEq, Eq)]
pub struct GoldenTrace {
    pub policy: String,
    pub horizon: usize,
    pub optimal_mean_bits: u64,
    pub total_reward_bits: u64,
    pub realised_bits: Vec<u64>,
    pub pseudo_bits: Vec<u64>,
}

impl GoldenTrace {
    pub fn from_result(result: &RunResult) -> Self {
        GoldenTrace {
            policy: result.policy.clone(),
            horizon: result.horizon,
            optimal_mean_bits: result.optimal_mean.to_bits(),
            total_reward_bits: result.total_reward.to_bits(),
            realised_bits: result
                .trace
                .realised()
                .iter()
                .map(|x| x.to_bits())
                .collect(),
            pseudo_bits: result.trace.pseudo().iter().map(|x| x.to_bits()).collect(),
        }
    }

    pub fn to_json(&self) -> String {
        let join = |xs: &[u64]| {
            xs.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "{{\n  \"policy\": \"{}\",\n  \"horizon\": {},\n  \"optimal_mean_bits\": {},\n  \
             \"total_reward_bits\": {},\n  \"realised_bits\": [{}],\n  \"pseudo_bits\": [{}]\n}}\n",
            self.policy,
            self.horizon,
            self.optimal_mean_bits,
            self.total_reward_bits,
            join(&self.realised_bits),
            join(&self.pseudo_bits),
        )
    }

    pub fn from_json(text: &str) -> Self {
        GoldenTrace {
            policy: extract_string(text, "policy"),
            horizon: extract_u64(text, "horizon") as usize,
            optimal_mean_bits: extract_u64(text, "optimal_mean_bits"),
            total_reward_bits: extract_u64(text, "total_reward_bits"),
            realised_bits: extract_u64_array(text, "realised_bits"),
            pseudo_bits: extract_u64_array(text, "pseudo_bits"),
        }
    }
}

// ----- minimal JSON field extraction (the workspace vendors no serde_json) ---

fn field_start<'a>(text: &'a str, key: &str) -> &'a str {
    let marker = format!("\"{key}\":");
    let pos = text
        .find(&marker)
        .unwrap_or_else(|| panic!("fixture is missing key {key:?}"));
    text[pos + marker.len()..].trim_start()
}

fn extract_string(text: &str, key: &str) -> String {
    let rest = field_start(text, key);
    let rest = rest
        .strip_prefix('"')
        .unwrap_or_else(|| panic!("key {key:?} is not a string"));
    rest[..rest.find('"').expect("unterminated string")].to_owned()
}

fn extract_u64(text: &str, key: &str) -> u64 {
    let rest = field_start(text, key);
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|e| panic!("key {key:?} is not a u64: {e}"))
}

fn extract_u64_array(text: &str, key: &str) -> Vec<u64> {
    let rest = field_start(text, key);
    let rest = rest
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("key {key:?} is not an array"));
    let body = &rest[..rest.find(']').expect("unterminated array")];
    body.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("array element is not a u64"))
        .collect()
}

// ----- fixture comparison ----------------------------------------------------

/// Loads the committed fixture `golden_<name>.json`.
pub fn load_golden(name: &str) -> GoldenTrace {
    let path = fixtures_dir().join(format!("golden_{name}.json"));
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run `NETBAND_REGEN_GOLDEN=1 cargo test --test \
             golden_traces` to create it",
            path.display()
        )
    });
    GoldenTrace::from_json(&text)
}

/// Asserts `result` reproduces the committed fixture `golden_<name>.json`
/// bit for bit, with a per-round diagnostic on divergence.
pub fn assert_golden(name: &str, result: &RunResult) {
    let actual = GoldenTrace::from_result(result);
    let expected = load_golden(name);
    assert_eq!(
        expected.horizon, actual.horizon,
        "{name}: horizon drifted from the committed fixture"
    );
    assert_eq!(
        expected.policy, actual.policy,
        "{name}: policy name drifted from the committed fixture"
    );
    assert_eq!(
        expected.optimal_mean_bits,
        actual.optimal_mean_bits,
        "{name}: the benchmark (optimal mean) is no longer bit-identical: {} vs {}",
        f64::from_bits(expected.optimal_mean_bits),
        f64::from_bits(actual.optimal_mean_bits),
    );
    for t in 0..expected.horizon {
        assert_eq!(
            expected.realised_bits[t],
            actual.realised_bits[t],
            "{name}: realised regret diverges at round {} ({} vs {})",
            t + 1,
            f64::from_bits(expected.realised_bits[t]),
            f64::from_bits(actual.realised_bits[t]),
        );
        assert_eq!(
            expected.pseudo_bits[t],
            actual.pseudo_bits[t],
            "{name}: pseudo regret diverges at round {} ({} vs {})",
            t + 1,
            f64::from_bits(expected.pseudo_bits[t]),
            f64::from_bits(actual.pseudo_bits[t]),
        );
    }
    assert_eq!(
        expected.total_reward_bits,
        actual.total_reward_bits,
        "{name}: total reward is no longer bit-identical: {} vs {}",
        f64::from_bits(expected.total_reward_bits),
        f64::from_bits(actual.total_reward_bits),
    );
}

/// Compares `result` against the committed fixture, or regenerates the
/// fixture when `NETBAND_REGEN_GOLDEN` is set (only the batch-simulation
/// suite regenerates — the serving suite always compares).
pub fn check_golden(name: &str, result: RunResult) {
    if std::env::var_os("NETBAND_REGEN_GOLDEN").is_some() {
        let path = fixtures_dir().join(format!("golden_{name}.json"));
        fs::create_dir_all(fixtures_dir()).expect("create fixtures dir");
        fs::write(&path, GoldenTrace::from_result(&result).to_json()).expect("write fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    assert_golden(name, &result);
}
