//! Statistical compliance of the four DFL policies with the closed-form
//! regret bounds of Theorems 1–4 (`netband_core::bounds`).
//!
//! Each test runs a policy on a small fixed instance across three seeds and
//! asserts that the final cumulative *pseudo*-regret stays under the theorem's
//! closed form. The slack factors are documented per scenario:
//!
//! * Theorems 1 and 2 (SSO / CSO) are loose but non-vacuous at these horizons,
//!   so the empirical regret is additionally required to stay under **half**
//!   the bound — a grossly regressed policy (e.g. one that stopped learning)
//!   would land near the linear-regret ceiling and fail.
//! * Theorems 3 and 4 (SSR / CSR) carry `49·K·sqrt(nK)`-style constants that
//!   exceed the worst possible realised regret at any practical horizon, so
//!   for those scenarios the bound check is a sanity ceiling and the
//!   *sublinearity* of the measured regret is asserted instead: the
//!   time-averaged pseudo-regret over the last quarter of the run must be
//!   below its average over the first quarter.

use netband::core::bounds;
use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: [u64; 3] = [11, 42, 1789];
const NUM_ARMS: usize = 8;

fn instance(seed: u64) -> NetworkedBandit {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::erdos_renyi(NUM_ARMS, 0.4, &mut rng);
    let arms = ArmSet::random_bernoulli(NUM_ARMS, &mut rng);
    NetworkedBandit::new(graph, arms).unwrap()
}

/// Mean per-round pseudo-regret over the first and last quarter of a trace.
fn quarter_averages(pseudo: &[f64]) -> (f64, f64) {
    let q = (pseudo.len() / 4).max(1);
    let head = pseudo[..q].iter().sum::<f64>() / q as f64;
    let tail = pseudo[pseudo.len() - q..].iter().sum::<f64>() / q as f64;
    (head, tail)
}

#[test]
fn dfl_sso_stays_under_theorem1() {
    let horizon = 4000;
    for seed in SEEDS {
        let bandit = instance(seed);
        // A clique cover of the whole graph also covers the high-gap induced
        // subgraph `H` of Theorem 1 (restricting its cliques to `H` can only
        // drop parts), and the bound is increasing in `C`, so using the full
        // cover size is valid and spares re-deriving `H` per instance.
        let clique_cover = bandit.csr().num_cliques();
        let mut policy = DflSso::new(bandit.graph().clone());
        let result = run_single(
            &bandit,
            &mut policy,
            SingleScenario::SideObservation,
            horizon,
            seed,
        );
        let empirical = result.trace.total_pseudo();
        let bound = bounds::theorem1_dfl_sso(horizon, NUM_ARMS, clique_cover);
        assert!(
            empirical <= bound,
            "seed {seed}: DFL-SSO pseudo-regret {empirical} exceeds Theorem 1 bound {bound}"
        );
        // Documented slack: stay under half the (loose) bound.
        assert!(
            empirical <= 0.5 * bound,
            "seed {seed}: DFL-SSO pseudo-regret {empirical} is suspiciously close \
             to the Theorem 1 bound {bound}"
        );
    }
}

#[test]
fn dfl_cso_stays_under_theorem2() {
    let horizon = 2500;
    for seed in SEEDS {
        let bandit = instance(seed);
        let family = StrategyFamily::independent_sets(2);
        let strategies = family.enumerate(bandit.graph()).unwrap();
        let sg = StrategyRelationGraph::build(bandit.graph(), strategies.clone());
        let num_strategies = sg.num_strategies();
        let clique_cover = greedy_clique_cover(sg.graph()).len();
        let mut policy = DflCso::new(sg);
        let result = run_combinatorial(
            &bandit,
            &family,
            &mut policy,
            CombinatorialScenario::SideObservation,
            horizon,
            seed,
        )
        .unwrap();
        let empirical = result.trace.total_pseudo();
        let bound = bounds::theorem2_dfl_cso(horizon, num_strategies, clique_cover);
        assert!(
            empirical <= bound,
            "seed {seed}: DFL-CSO pseudo-regret {empirical} exceeds Theorem 2 bound {bound}"
        );
        // Documented slack: stay under half the (loose) bound.
        assert!(
            empirical <= 0.5 * bound,
            "seed {seed}: DFL-CSO pseudo-regret {empirical} is suspiciously close \
             to the Theorem 2 bound {bound}"
        );
    }
}

#[test]
fn dfl_ssr_stays_under_theorem3_and_is_sublinear() {
    let horizon = 4000;
    for seed in SEEDS {
        let bandit = instance(seed);
        let mut policy = DflSsr::new(bandit.graph().clone());
        let result = run_single(
            &bandit,
            &mut policy,
            SingleScenario::SideReward,
            horizon,
            seed,
        );
        let empirical = result.trace.total_pseudo();
        let bound = bounds::theorem3_dfl_ssr(horizon, NUM_ARMS);
        assert!(
            empirical <= bound,
            "seed {seed}: DFL-SSR pseudo-regret {empirical} exceeds Theorem 3 bound {bound}"
        );
        // The Theorem 3 constant is vacuous at this horizon (documented above),
        // so additionally require the measured regret to actually vanish.
        let (head, tail) = quarter_averages(result.trace.pseudo());
        assert!(
            tail < head,
            "seed {seed}: DFL-SSR per-round pseudo-regret did not decrease \
             (first quarter {head}, last quarter {tail})"
        );
    }
}

#[test]
fn dfl_csr_stays_under_theorem4_and_is_sublinear() {
    let horizon = 2500;
    for seed in SEEDS {
        let bandit = instance(seed);
        let family = StrategyFamily::at_most_m(NUM_ARMS, 2);
        let mut policy = DflCsr::new(bandit.graph().clone(), family.clone());
        let result = run_combinatorial(
            &bandit,
            &family,
            &mut policy,
            CombinatorialScenario::SideReward,
            horizon,
            seed,
        )
        .unwrap();
        let empirical = result.trace.total_pseudo();
        let max_observation_set = {
            let csr = bandit.csr();
            // |Y_x| ≤ sum of the two largest closed neighbourhoods.
            let mut sizes: Vec<usize> = (0..NUM_ARMS)
                .map(|v| csr.closed_neighborhood(v).len())
                .collect();
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            (sizes[0] + sizes.get(1).copied().unwrap_or(0)).min(NUM_ARMS)
        };
        let bound = bounds::theorem4_dfl_csr(horizon, NUM_ARMS, max_observation_set);
        assert!(
            empirical <= bound,
            "seed {seed}: DFL-CSR pseudo-regret {empirical} exceeds Theorem 4 bound {bound}"
        );
        // Theorem 4's constants are vacuous at this horizon (documented above),
        // so additionally require the measured regret to actually vanish.
        let (head, tail) = quarter_averages(result.trace.pseudo());
        assert!(
            tail < head,
            "seed {seed}: DFL-CSR per-round pseudo-regret did not decrease \
             (first quarter {head}, last quarter {tail})"
        );
    }
}
