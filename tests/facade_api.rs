//! Smoke tests of the facade crate: everything a downstream user needs is
//! reachable through `netband::...` and the prelude.

use netband::prelude::*;

#[test]
fn prelude_exports_cover_the_main_types() {
    // Graph substrate.
    let graph = RelationGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    assert_eq!(greedy_clique_cover(&graph).len(), 2);

    // Environment.
    let arms = ArmSet::linear_bernoulli(4);
    let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
    assert_eq!(bandit.num_arms(), 4);

    // Policies (paper + baselines).
    let _sso = DflSso::new(graph.clone());
    let _ssr = DflSsr::new(graph.clone());
    let _csr = DflCsr::new(graph.clone(), StrategyFamily::at_most_m(4, 2));
    let _moss = Moss::new(4);
    let _ucb = Ucb1::new(4);
    let _thompson = ThompsonBernoulli::new(4, 0);
    let _eps = EpsilonGreedy::decaying(4, 5.0, 0);
    let _exp3 = Exp3::new(4, 0.1, 0);
    let _cucb = Cucb::new(graph.clone(), StrategyFamily::at_most_m(4, 2));
    let _llr = Llr::new(graph, StrategyFamily::at_most_m(4, 2));

    // Bounds.
    assert!(bounds::theorem1_dfl_sso(1_000, 4, 2) > 0.0);
}

#[test]
fn fully_qualified_paths_work_too() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let graph = netband::graph::generators::star(6);
    let arms = netband::env::ArmSet::random_bernoulli(6, &mut rng);
    let bandit = netband::env::NetworkedBandit::new(graph.clone(), arms).unwrap();
    let mut policy = netband::core::DflSso::new(graph);
    let result = netband::sim::run_single(
        &bandit,
        &mut policy,
        netband::sim::SingleScenario::SideObservation,
        200,
        2,
    );
    assert_eq!(result.horizon, 200);
}

#[test]
fn experiment_modules_are_reachable_and_runnable_at_tiny_scale() {
    let cfg = netband::experiments::fig3::Fig3Config {
        num_arms: 8,
        edge_prob: 0.5,
        scale: netband::experiments::Scale {
            horizon: 60,
            replications: 2,
        },
        base_seed: 1,
    };
    let result = netband::experiments::fig3::run(&cfg);
    assert_eq!(result.dfl_sso.horizon, 60);

    let rows =
        netband::experiments::bounds_exp::run(&netband::experiments::bounds_exp::BoundsConfig {
            horizons: vec![100],
            arm_counts: vec![8],
            edge_probs: vec![0.3],
            seed: 1,
        });
    assert_eq!(rows.len(), 1);
}
