//! Engine-level integration tests: multi-shard routing, concurrent clients,
//! delayed batched feedback, lifecycle errors, and metrics accounting.
//!
//! The bit-exactness of the served math is pinned by
//! `tests/serve_equivalence.rs`; this suite exercises the concurrent parts —
//! many tenants, many client threads, feedback arriving late, in batches and
//! out of order — and the bookkeeping the engine reports about them.

mod common;

use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(seed: u64, num_arms: usize) -> NetworkedBandit {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::erdos_renyi(num_arms, 0.4, &mut rng);
    let arms = ArmSet::random_bernoulli(num_arms, &mut rng);
    NetworkedBandit::new(graph, arms).unwrap()
}

/// A mixed single/combinatorial tenant spec, deterministic in `index`.
fn tenant_spec(index: usize, flush: FlushPolicy) -> TenantSpec {
    let id = format!("tenant-{index:02}");
    let bandit = instance(1000 + index as u64, 10);
    let seed = 5000 + index as u64;
    if index % 2 == 0 {
        TenantSpec::single(
            id,
            bandit.clone(),
            DflSso::new(bandit.graph().clone()),
            SingleScenario::SideObservation,
            seed,
        )
        .with_flush(flush)
    } else {
        let family = StrategyFamily::at_most_m(10, 3);
        TenantSpec::combinatorial(
            id,
            bandit.clone(),
            DflCsr::new(bandit.graph().clone(), family.clone()),
            family,
            CombinatorialScenario::SideReward,
            seed,
        )
        .with_flush(flush)
    }
}

/// Drives one tenant for `rounds` decides, withholding feedback in a local
/// window and delivering each window in *reverse* round order — the delayed,
/// out-of-order regime. Returns the sum of realised rewards (for a cheap
/// cross-run comparison).
fn drive_with_delayed_feedback(
    engine: &ServeEngine,
    tenant: &str,
    rounds: usize,
    window: usize,
) -> f64 {
    let mut held = Vec::new();
    let mut total = 0.0;
    for _ in 0..rounds {
        let reply = engine.decide(tenant).expect("decide");
        total += reply.reward;
        held.push((reply.round, reply.feedback.expect("echoed feedback")));
        if held.len() >= window {
            for (round, event) in held.drain(..).rev() {
                engine.feedback(tenant, round, event).expect("feedback");
            }
        }
    }
    for (round, event) in held.drain(..).rev() {
        engine.feedback(tenant, round, event).expect("feedback");
    }
    total
}

/// The tentpole end-to-end scenario: a multi-shard engine (4 by default,
/// overridable via `NETBAND_TEST_SHARDS` so CI covers shards above and below
/// the core count) hosting 16 mixed tenants, driven by 4 concurrent client
/// threads, feedback delayed in out-of-order windows. Every command is
/// accounted for in the metrics report, and every tenant reaches its full
/// horizon.
#[test]
fn multi_shard_engine_serves_concurrent_clients_with_delayed_feedback() {
    const TENANTS: usize = 16;
    const ROUNDS: usize = 40;
    const CLIENTS: usize = 4;

    let shards = common::test_shards(4);
    let engine = ServeEngine::start(EngineConfig::new(shards).with_queue_capacity(64));
    assert_eq!(engine.num_shards(), shards);
    for index in 0..TENANTS {
        engine
            .create_tenant(tenant_spec(index, FlushPolicy::batched(8)))
            .unwrap();
    }

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let engine = &engine;
            scope.spawn(move || {
                for index in (client..TENANTS).step_by(CLIENTS) {
                    let id = format!("tenant-{index:02}");
                    drive_with_delayed_feedback(engine, &id, ROUNDS, 10);
                }
            });
        }
    });

    engine.drain().unwrap();
    let report = engine.metrics().unwrap();
    assert_eq!(report.total_decides(), (TENANTS * ROUNDS) as u64);
    assert_eq!(report.total_feedback_events(), (TENANTS * ROUNDS) as u64);
    assert_eq!(report.tenants.len(), TENANTS);
    for (id, metrics) in &report.tenants {
        assert_eq!(metrics.decides, ROUNDS as u64, "{id}");
        // Every event was eventually applied (drain flushed the remainder).
        assert_eq!(metrics.events_applied, ROUNDS as u64, "{id}");
        assert!(metrics.batches_flushed > 0, "{id}");
        assert!(metrics.max_batch >= 8, "{id}: flush threshold respected");
    }
    assert_eq!(report.shards.len(), shards);
    let commands: u64 = report.shards.iter().map(|s| s.commands).sum();
    assert!(commands >= report.total_decides() + report.total_feedback_events());
    assert_eq!(report.decide_latency().count(), (TENANTS * ROUNDS) as u64);
    engine.shutdown();
}

/// A tenant's trajectory depends only on its own command sequence: driving
/// the same tenant with the same client schedule alone on a 1-shard engine
/// produces a bit-identical run, regardless of how many neighbours and
/// threads the shared engine was juggling.
#[test]
fn tenant_runs_are_independent_of_cohabitation_and_threading() {
    let shared = ServeEngine::with_shards(common::test_shards(3));
    for index in 0..6 {
        shared
            .create_tenant(tenant_spec(index, FlushPolicy::batched(4)))
            .unwrap();
    }
    std::thread::scope(|scope| {
        for client in 0..3 {
            let shared = &shared;
            scope.spawn(move || {
                for index in (client..6).step_by(3) {
                    let id = format!("tenant-{index:02}");
                    drive_with_delayed_feedback(shared, &id, 30, 7);
                }
            });
        }
    });

    for index in 0..6 {
        let id = format!("tenant-{index:02}");
        let shared_snapshot = shared.evict_tenant(&id).unwrap();

        let alone = ServeEngine::with_shards(1);
        alone
            .create_tenant(tenant_spec(index, FlushPolicy::batched(4)))
            .unwrap();
        drive_with_delayed_feedback(&alone, &id, 30, 7);
        let alone_snapshot = alone.evict_tenant(&id).unwrap();
        alone.shutdown();

        assert_eq!(
            shared_snapshot.run_result(),
            alone_snapshot.run_result(),
            "{id}: cohabitation changed the served trajectory"
        );
    }
    shared.shutdown();
}

#[test]
fn lifecycle_errors_are_reported() {
    let engine = ServeEngine::with_shards(2);
    engine
        .create_tenant(tenant_spec(0, FlushPolicy::immediate()))
        .unwrap();
    // Duplicate registration is rejected.
    let err = engine
        .create_tenant(tenant_spec(0, FlushPolicy::immediate()))
        .unwrap_err();
    assert_eq!(err, ServeError::DuplicateTenant("tenant-00".into()));
    // Unknown tenants error on request/response commands ...
    let err = engine.decide("no-such-tenant").unwrap_err();
    assert_eq!(err, ServeError::UnknownTenant("no-such-tenant".into()));
    assert!(engine.snapshot_tenant("no-such-tenant").is_err());
    // ... and eviction removes the tenant for good.
    engine.evict_tenant("tenant-00").unwrap();
    let err = engine.decide("tenant-00").unwrap_err();
    assert_eq!(err, ServeError::UnknownTenant("tenant-00".into()));
    engine.shutdown();
}

/// Fire-and-forget feedback cannot return an error; misdirected events are
/// counted in the shard's `rejected` metric instead of vanishing silently.
#[test]
fn misdirected_feedback_is_counted_not_lost() {
    let engine = ServeEngine::with_shards(1);
    engine
        .create_tenant(tenant_spec(0, FlushPolicy::immediate()))
        .unwrap();
    let reply = engine.decide("tenant-00").unwrap();
    // Unknown tenant.
    engine
        .feedback(
            "ghost",
            1,
            FeedbackEvent::Single(netband::env::SinglePlayFeedback::default()),
        )
        .unwrap();
    // Wrong feedback kind for a single-play tenant.
    engine
        .feedback(
            "tenant-00",
            1,
            FeedbackEvent::Combinatorial(netband::env::CombinatorialFeedback::default()),
        )
        .unwrap();
    // A round the tenant never served.
    engine
        .feedback("tenant-00", 99, reply.feedback.unwrap())
        .unwrap();
    // Flush addressed to nobody.
    engine.flush("ghost").unwrap();
    let report = engine.metrics().unwrap();
    assert_eq!(report.shards[0].rejected, 4);
    assert_eq!(report.total_feedback_events(), 0);
    engine.shutdown();
}

/// Batched flush policies fold feedback in at the configured threshold: the
/// queue builds to `max_pending` and is applied as one batch.
#[test]
fn batched_flush_applies_at_the_threshold() {
    let engine = ServeEngine::with_shards(1);
    engine
        .create_tenant(tenant_spec(0, FlushPolicy::batched(4)))
        .unwrap();
    let mut held = Vec::new();
    for _ in 0..4 {
        let reply = engine.decide("tenant-00").unwrap();
        held.push((reply.round, reply.feedback.unwrap()));
    }
    // Deliver three: below the threshold, nothing applies.
    for (round, event) in held.drain(..3) {
        engine.feedback("tenant-00", round, event).unwrap();
    }
    let report = engine.metrics().unwrap();
    let (_, metrics) = &report.tenants[0];
    assert_eq!(metrics.feedback_events, 3);
    assert_eq!(metrics.events_applied, 0);
    // The fourth event reaches the threshold and flushes the whole batch.
    let (round, event) = held.pop().unwrap();
    engine.feedback("tenant-00", round, event).unwrap();
    let report = engine.metrics().unwrap();
    let (_, metrics) = &report.tenants[0];
    assert_eq!(metrics.events_applied, 4);
    assert_eq!(metrics.batches_flushed, 1);
    assert_eq!(metrics.max_batch, 4);
    assert!((metrics.mean_batch() - 4.0).abs() < 1e-12);
    engine.shutdown();
}

/// An explicit `flush` applies a partial batch without waiting for the
/// threshold.
#[test]
fn explicit_flush_applies_partial_batches() {
    let engine = ServeEngine::with_shards(1);
    engine
        .create_tenant(tenant_spec(1, FlushPolicy::batched(1024)))
        .unwrap();
    for _ in 0..5 {
        let reply = engine.decide("tenant-01").unwrap();
        engine
            .feedback("tenant-01", reply.round, reply.feedback.unwrap())
            .unwrap();
    }
    engine.flush("tenant-01").unwrap();
    let report = engine.metrics().unwrap();
    let (_, metrics) = &report.tenants[0];
    assert_eq!(metrics.events_applied, 5);
    assert_eq!(metrics.batches_flushed, 1);
    engine.shutdown();
}
