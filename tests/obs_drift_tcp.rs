//! End-to-end drift acceptance over TCP: the committed drifting scenario is
//! served through a real socket, and the live bandit telemetry must *show*
//! the drift — per-arm empirical means sampled before and after the change
//! point move, while counters stay exact. The same engine's Prometheus-style
//! exposition must round-trip through the strict scrape parser.

mod common;

use std::sync::Arc;

use common::{drift_scenario, DRIFT_CHANGE_ROUND, DRIFT_HORIZON};
use netband::net::render_metrics;
use netband::obs::ExpositionLine;
use netband::prelude::*;
use netband::spec::WireTelemetry;

const TENANT: &str = "drift-live";

/// Serves one closed-loop round over the wire: one decide frame, one
/// feedback frame echoing the revealed event.
fn wire_round(client: &mut NetClient) {
    let replies = client.decide_many(TENANT, 1).expect("decide frame");
    let reply = replies.into_iter().next().expect("one reply");
    let event = reply.feedback.expect("drift tenant echoes feedback");
    let accepted = client
        .feedback_many(
            TENANT,
            vec![WireFeedback {
                round: reply.round,
                event,
            }],
        )
        .expect("feedback frame");
    assert_eq!(accepted, 1);
}

#[test]
fn drift_telemetry_over_tcp_sees_the_change_point() {
    let engine = Arc::new(ServeEngine::start(
        EngineConfig::new(2).with_trace_capacity(1024),
    ));
    let server = NetServer::bind(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback server");
    let mut client = NetClient::connect(server.local_addr()).expect("connect client");

    client
        .register_tenant(TENANT, drift_scenario())
        .expect("register drift tenant over the wire");

    for _ in 0..DRIFT_CHANGE_ROUND {
        wire_round(&mut client);
    }
    let before: WireTelemetry = client.telemetry(TENANT).expect("telemetry at change point");
    assert_eq!(before.round, DRIFT_CHANGE_ROUND);
    assert!(!before.arms.is_empty(), "CTS-D exposes per-arm estimators");

    for _ in DRIFT_CHANGE_ROUND..DRIFT_HORIZON as u64 {
        wire_round(&mut client);
    }
    let after: WireTelemetry = client.telemetry(TENANT).expect("telemetry at horizon");
    assert_eq!(after.round, DRIFT_HORIZON as u64);
    assert_eq!(after.decides, DRIFT_HORIZON as u64);
    assert_eq!(after.feedback_events, DRIFT_HORIZON as u64);
    assert_eq!(
        after.pending_feedback, 0,
        "immediate feedback leaves no queue"
    );
    assert_eq!(after.arms.len(), before.arms.len());

    // The change point at round 150 swaps arm means; with a discounted
    // estimator the empirical means must visibly move between the two
    // samples. "Visibly" is deliberately loose (>1e-3 on some arm) — this
    // asserts the telemetry tracks learning, not a particular trajectory.
    let moved = before
        .arms
        .iter()
        .zip(&after.arms)
        .map(|(b, a)| {
            assert_eq!(b.arm, a.arm, "arm ids are stable across samples");
            assert!(a.pulls >= b.pulls, "pull counts are monotonic");
            (a.mean - b.mean).abs()
        })
        .fold(0.0_f64, f64::max);
    assert!(
        moved > 1e-3,
        "per-arm means should move across the change point (max shift {moved:e})"
    );

    // Regret proxy is internally consistent on both sides of the wire.
    assert_eq!(
        after.regret.to_bits(),
        (after.optimal_reward - after.total_reward).to_bits()
    );
    let local = engine.telemetry(TENANT).expect("in-process telemetry");
    assert_eq!(local.total_reward.to_bits(), after.total_reward.to_bits());

    // The live exposition for this very engine parses under the strict
    // scrape grammar and reports every served decide.
    let text = render_metrics(&engine, server.stats()).expect("render exposition");
    let lines = netband::obs::parse_exposition(&text).expect("exposition parses");
    let decides = lines
        .iter()
        .find_map(|line| match line {
            ExpositionLine::Sample { name, value, .. } if name == "netband_decides_total" => {
                Some(*value)
            }
            _ => None,
        })
        .expect("netband_decides_total is exposed");
    assert_eq!(decides, DRIFT_HORIZON as f64);
    let tenant_rounds = lines.iter().any(|line| {
        matches!(
            line,
            ExpositionLine::Sample { name, labels, .. }
                if name == "netband_tenant_rounds_total"
                    && labels.iter().any(|(k, v)| k == "tenant" && v == TENANT)
        )
    });
    assert!(tenant_rounds, "per-tenant telemetry reaches the exposition");
}
