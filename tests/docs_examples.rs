//! Docs-as-tests: every fenced ```json block in the documentation must be a
//! complete, valid scenario document.
//!
//! The cookbook (`docs/SCENARIOS.md`) and the README promise that their JSON
//! examples can be fed verbatim to `examples/run_scenario.rs` or a fleet boot.
//! This harness extracts each fence and pushes it through the strict codec —
//! as a [`ScenarioSpec`], or failing that a [`FleetSpec`] — then validates it.
//! A stale example (renamed field, removed variant, wrong arity) fails CI with
//! the file, the fence number, and the codec's error.

use std::fs;
use std::path::{Path, PathBuf};

use netband::prelude::*;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts the body of every fenced ```json block, with its 1-based starting
/// line number for diagnostics.
fn json_fences(text: &str) -> Vec<(usize, String)> {
    let mut fences = Vec::new();
    let mut body: Option<(usize, String)> = None;
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        match &mut body {
            None if trimmed == "```json" => body = Some((idx + 2, String::new())),
            Some((start, acc)) => {
                if trimmed == "```" {
                    fences.push((*start, std::mem::take(acc)));
                    body = None;
                } else {
                    acc.push_str(line);
                    acc.push('\n');
                }
            }
            None => {}
        }
    }
    assert!(body.is_none(), "unterminated ```json fence");
    fences
}

/// One documentation fence: either a scenario or a fleet, strictly parsed and
/// validated.
fn check_fence(doc: &Path, line: usize, body: &str) {
    match ScenarioSpec::from_json_text(body) {
        Ok(spec) => {
            spec.validate().unwrap_or_else(|e| {
                panic!(
                    "{}:{line}: scenario example fails validation: {e}",
                    doc.display()
                )
            });
        }
        Err(scenario_err) => {
            let fleet = FleetSpec::from_json_text(body).unwrap_or_else(|fleet_err| {
                panic!(
                    "{}:{line}: example parses neither as a ScenarioSpec ({scenario_err}) nor \
                     as a FleetSpec ({fleet_err})",
                    doc.display()
                )
            });
            fleet.validate().unwrap_or_else(|e| {
                panic!(
                    "{}:{line}: fleet example fails validation: {e}",
                    doc.display()
                )
            });
        }
    }
}

fn check_doc(relative: &str, min_fences: usize) {
    let path = repo_root().join(relative);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e})", path.display()));
    let fences = json_fences(&text);
    assert!(
        fences.len() >= min_fences,
        "{relative}: expected at least {min_fences} ```json examples, found {} — \
         did the cookbook lose a section?",
        fences.len()
    );
    for (line, body) in &fences {
        check_fence(&path, *line, body);
    }
}

#[test]
fn every_scenarios_cookbook_example_parses_and_validates() {
    check_doc("docs/SCENARIOS.md", 9);
}

#[test]
fn every_readme_example_parses_and_validates() {
    check_doc("README.md", 1);
}

/// The committed drifting fixture is itself a documented example workflow;
/// keep it honest too.
#[test]
fn the_drift_fixture_document_parses_and_validates() {
    let path = repo_root().join("tests/fixtures/drift_scenario.json");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e})", path.display()));
    let spec = ScenarioSpec::from_json_text(&text).expect("drift fixture parses");
    spec.validate().expect("drift fixture validates");
}
