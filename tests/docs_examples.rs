//! Docs-as-tests: every fenced ```json block in the documentation must be a
//! complete, valid document of *some* kind the codec speaks.
//!
//! The cookbook (`docs/SCENARIOS.md`) and the README promise that their JSON
//! examples can be fed verbatim to `examples/run_scenario.rs` or a fleet
//! boot; `docs/ARCHITECTURE.md` additionally documents the wire protocol
//! with literal request/response frames. This harness extracts each fence
//! and pushes it through the strict codec, trying in order: [`ScenarioSpec`]
//! → [`FleetSpec`] → [`WireRequest`] → [`WireResponse`] → [`WalRecord`] →
//! [`ShardSnapshot`] (validating where a `validate()` exists; the last two
//! cover the durability section's literal WAL records and snapshot
//! documents). A stale example (renamed field, removed variant, wrong arity)
//! fails CI with the file, the fence number, and the codec's error for the
//! most likely intended kind.

use std::fs;
use std::path::{Path, PathBuf};

use netband::prelude::*;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts the body of every fenced ```json block, with its 1-based starting
/// line number for diagnostics.
fn json_fences(text: &str) -> Vec<(usize, String)> {
    let mut fences = Vec::new();
    let mut body: Option<(usize, String)> = None;
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        match &mut body {
            None if trimmed == "```json" => body = Some((idx + 2, String::new())),
            Some((start, acc)) => {
                if trimmed == "```" {
                    fences.push((*start, std::mem::take(acc)));
                    body = None;
                } else {
                    acc.push_str(line);
                    acc.push('\n');
                }
            }
            None => {}
        }
    }
    assert!(body.is_none(), "unterminated ```json fence");
    fences
}

/// One documentation fence: a scenario, a fleet, a wire request, or a wire
/// response — strictly parsed, and validated where validation exists.
fn check_fence(doc: &Path, line: usize, body: &str) {
    let scenario_err = match ScenarioSpec::from_json_text(body) {
        Ok(spec) => {
            spec.validate().unwrap_or_else(|e| {
                panic!(
                    "{}:{line}: scenario example fails validation: {e}",
                    doc.display()
                )
            });
            return;
        }
        Err(e) => e,
    };
    let fleet_err = match FleetSpec::from_json_text(body) {
        Ok(fleet) => {
            fleet.validate().unwrap_or_else(|e| {
                panic!(
                    "{}:{line}: fleet example fails validation: {e}",
                    doc.display()
                )
            });
            return;
        }
        Err(e) => e,
    };
    let request_err = match WireRequest::from_json_text(body) {
        Ok(_) => return,
        Err(e) => e,
    };
    let response_err = match WireResponse::from_json_text(body) {
        Ok(_) => return,
        Err(e) => e,
    };
    let wal_err = match netband::spec::WalRecord::from_json_text(body) {
        Ok(_) => return,
        Err(e) => e,
    };
    let snapshot_err = match netband::spec::ShardSnapshot::from_json_text(body) {
        Ok(_) => return,
        Err(e) => e,
    };
    panic!(
        "{}:{line}: example parses as none of the documented kinds:\n\
         - ScenarioSpec: {scenario_err}\n\
         - FleetSpec: {fleet_err}\n\
         - WireRequest: {request_err}\n\
         - WireResponse: {response_err}\n\
         - WalRecord: {wal_err}\n\
         - ShardSnapshot: {snapshot_err}",
        doc.display()
    );
}

fn check_doc(relative: &str, min_fences: usize) {
    let path = repo_root().join(relative);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e})", path.display()));
    let fences = json_fences(&text);
    assert!(
        fences.len() >= min_fences,
        "{relative}: expected at least {min_fences} ```json examples, found {} — \
         did the cookbook lose a section?",
        fences.len()
    );
    for (line, body) in &fences {
        check_fence(&path, *line, body);
    }
}

#[test]
fn every_scenarios_cookbook_example_parses_and_validates() {
    check_doc("docs/SCENARIOS.md", 9);
}

#[test]
fn every_readme_example_parses_and_validates() {
    check_doc("README.md", 1);
}

/// The wire-protocol section documents literal frames and the durability
/// section literal WAL records; every one of them must be a
/// strictly-parseable document.
#[test]
fn every_architecture_example_parses_and_validates() {
    check_doc("docs/ARCHITECTURE.md", 12);
}

/// The committed drifting fixture is itself a documented example workflow;
/// keep it honest too.
#[test]
fn the_drift_fixture_document_parses_and_validates() {
    let path = repo_root().join("tests/fixtures/drift_scenario.json");
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e})", path.display()));
    let spec = ScenarioSpec::from_json_text(&text).expect("drift fixture parses");
    spec.validate().expect("drift fixture validates");
}
