//! End-to-end integration tests: every scenario of the paper run through the
//! public facade API, from graph generation to regret accounting.

use netband::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(k: usize, p: f64, seed: u64) -> NetworkedBandit {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::erdos_renyi(k, p, &mut rng);
    let arms = ArmSet::random_bernoulli(k, &mut rng);
    NetworkedBandit::new(graph, arms).expect("sizes match by construction")
}

fn trend_down(curve: &[f64]) -> bool {
    let quarter = curve.len() / 4;
    let early: f64 = curve[quarter..2 * quarter].iter().sum::<f64>() / quarter as f64;
    let late: f64 = curve[curve.len() - quarter..].iter().sum::<f64>() / quarter as f64;
    late <= early
}

#[test]
fn sso_scenario_end_to_end() {
    let bandit = workload(30, 0.3, 1);
    let mut policy = DflSso::new(bandit.graph().clone());
    let result = run_single(
        &bandit,
        &mut policy,
        SingleScenario::SideObservation,
        3_000,
        2,
    );
    assert_eq!(result.trace.len(), 3_000);
    assert!(
        result.average_regret() < 0.3,
        "R_n/n = {}",
        result.average_regret()
    );
    assert!(trend_down(&result.trace.time_averaged_pseudo()));
}

#[test]
fn ssr_scenario_end_to_end() {
    let bandit = workload(30, 0.3, 3);
    let mut policy = DflSsr::new(bandit.graph().clone());
    let result = run_single(&bandit, &mut policy, SingleScenario::SideReward, 3_000, 4);
    // Regret is measured on the [0, K]-scaled side reward, so compare against the
    // optimal value rather than an absolute constant.
    assert!(result.average_regret() < 0.3 * bandit.best_single_side_mean());
    assert!(trend_down(&result.trace.time_averaged_pseudo()));
}

#[test]
fn cso_scenario_end_to_end() {
    let bandit = workload(12, 0.4, 5);
    let family = StrategyFamily::independent_sets(2);
    let strategies = family
        .enumerate(bandit.graph())
        .expect("small instance is enumerable");
    let mut policy = DflCso::from_strategies(bandit.graph(), strategies);
    let result = run_combinatorial(
        &bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideObservation,
        3_000,
        6,
    )
    .expect("feasible strategies only");
    assert!(trend_down(&result.trace.time_averaged_pseudo()));
    assert!(result.average_regret() < 0.4 * bandit.best_strategy_direct_mean(&family));
}

#[test]
fn csr_scenario_end_to_end() {
    let bandit = workload(15, 0.3, 7);
    let family = StrategyFamily::at_most_m(15, 3);
    let mut policy = DflCsr::new(bandit.graph().clone(), family.clone());
    let result = run_combinatorial(
        &bandit,
        &family,
        &mut policy,
        CombinatorialScenario::SideReward,
        3_000,
        8,
    )
    .expect("feasible strategies only");
    assert!(trend_down(&result.trace.time_averaged_pseudo()));
    assert!(result.average_regret() < 0.4 * bandit.best_strategy_side_mean(&family));
}

#[test]
fn dfl_sso_dominates_moss_with_side_observation() {
    // The headline Fig. 3 comparison through the public API.
    let bandit = workload(50, 0.4, 9);
    let mut dfl = DflSso::new(bandit.graph().clone());
    let mut moss = Moss::new(50);
    let results = run_single_coupled(
        &bandit,
        &mut [&mut dfl, &mut moss],
        SingleScenario::SideObservation,
        4_000,
        10,
    );
    assert!(results[0].trace.total_pseudo() < results[1].trace.total_pseudo());
}

#[test]
fn measured_regret_respects_the_theorem_bounds() {
    let bandit = workload(40, 0.3, 11);
    let cover = greedy_clique_cover(bandit.graph()).len();
    let horizon = 2_000;

    let mut sso = DflSso::new(bandit.graph().clone());
    let sso_run = run_single(
        &bandit,
        &mut sso,
        SingleScenario::SideObservation,
        horizon,
        12,
    );
    assert!(sso_run.total_regret() < bounds::theorem1_dfl_sso(horizon, 40, cover));

    let mut ssr = DflSsr::new(bandit.graph().clone());
    let ssr_run = run_single(&bandit, &mut ssr, SingleScenario::SideReward, horizon, 13);
    assert!(ssr_run.total_regret() < bounds::theorem3_dfl_ssr(horizon, 40));
}

#[test]
fn replication_through_the_facade_is_deterministic() {
    let bandit = workload(20, 0.3, 14);
    let graph = bandit.graph().clone();
    let config = ReplicationConfig::serial(4, 99);
    let run_once = |_, seed: u64| {
        let mut policy = DflSso::new(graph.clone());
        run_single(
            &bandit,
            &mut policy,
            SingleScenario::SideObservation,
            500,
            seed,
        )
    };
    let a = replicate(&config, run_once);
    let b = replicate(&config, run_once);
    assert_eq!(a, b);
    assert_eq!(a.replications, 4);
    assert_eq!(a.expected_regret.len(), 500);
}

#[test]
fn degenerate_instances_do_not_break_the_pipeline() {
    // Single arm, no edges.
    let graph = generators::edgeless(1);
    let bandit = NetworkedBandit::new(graph.clone(), ArmSet::bernoulli(&[0.5])).unwrap();
    let mut policy = DflSso::new(graph);
    let result = run_single(&bandit, &mut policy, SingleScenario::SideObservation, 50, 1);
    // With a single arm the policy always plays optimally in expectation.
    assert!(result.trace.total_pseudo().abs() < 1e-9);

    // Horizon zero.
    let bandit2 = workload(5, 0.5, 15);
    let mut policy2 = DflSsr::new(bandit2.graph().clone());
    let result2 = run_single(&bandit2, &mut policy2, SingleScenario::SideReward, 0, 2);
    assert_eq!(result2.trace.len(), 0);
}

#[test]
fn workspace_smoke_all_four_dfl_policies() {
    // The tier-1 workspace smoke: every DFL policy runs a short horizon on the
    // same seeded Erdős–Rényi instance and produces finite regret whose
    // running average trends down.
    let bandit = workload(12, 0.35, 21);
    let family = StrategyFamily::independent_sets(2);
    let horizon = 800;
    let mut curves: Vec<(&str, Vec<f64>)> = Vec::new();

    let mut sso = DflSso::new(bandit.graph().clone());
    let r = run_single(
        &bandit,
        &mut sso,
        SingleScenario::SideObservation,
        horizon,
        22,
    );
    curves.push(("DFL-SSO", r.trace.time_averaged_pseudo()));

    let mut ssr = DflSsr::new(bandit.graph().clone());
    let r = run_single(&bandit, &mut ssr, SingleScenario::SideReward, horizon, 23);
    curves.push(("DFL-SSR", r.trace.time_averaged_pseudo()));

    let strategies = family
        .enumerate(bandit.graph())
        .expect("small instance is enumerable");
    let mut cso = DflCso::from_strategies(bandit.graph(), strategies);
    let r = run_combinatorial(
        &bandit,
        &family,
        &mut cso,
        CombinatorialScenario::SideObservation,
        horizon,
        24,
    )
    .expect("feasible strategies only");
    curves.push(("DFL-CSO", r.trace.time_averaged_pseudo()));

    let mut csr = DflCsr::new(bandit.graph().clone(), family.clone());
    let r = run_combinatorial(
        &bandit,
        &family,
        &mut csr,
        CombinatorialScenario::SideReward,
        horizon,
        25,
    )
    .expect("feasible strategies only");
    curves.push(("DFL-CSR", r.trace.time_averaged_pseudo()));

    for (name, curve) in curves {
        assert_eq!(curve.len(), horizon, "{name} trace length");
        assert!(
            curve.iter().all(|v| v.is_finite()),
            "{name} produced non-finite regret"
        );
        assert!(
            trend_down(&curve),
            "{name} average regret did not trend down"
        );
    }
}

#[test]
fn all_four_policies_expose_their_names_through_the_traits() {
    let graph = generators::path(4);
    let family = StrategyFamily::at_most_m(4, 2);
    let strategies = family.enumerate(&graph).unwrap();
    let sso: Box<dyn SinglePlayPolicy> = Box::new(DflSso::new(graph.clone()));
    let ssr: Box<dyn SinglePlayPolicy> = Box::new(DflSsr::new(graph.clone()));
    let cso: Box<dyn CombinatorialPolicy> = Box::new(DflCso::from_strategies(&graph, strategies));
    let csr: Box<dyn CombinatorialPolicy> = Box::new(DflCsr::new(graph, family));
    assert_eq!(sso.name(), "DFL-SSO");
    assert_eq!(ssr.name(), "DFL-SSR");
    assert_eq!(cso.name(), "DFL-CSO");
    assert_eq!(csr.name(), "DFL-CSR");
}
