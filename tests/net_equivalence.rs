//! Network-equivalence suite: the framed TCP wire path must be a
//! **transparent window** onto the serving engine.
//!
//! `tests/spec_golden.rs` pins the spec pipeline and the in-process engine to
//! the committed golden DFL traces; this suite pins the network front end to
//! the same fixtures. A real `NetClient` over a real loopback socket —
//! length-prefixed frames, strict JSON documents, the batched
//! `try_decide_many` server path — must reproduce the golden trajectories
//! **f64 bit for bit**, in lockstep with an in-process reference engine.
//!
//! Also covered: chunked wire batches against the in-process batched client,
//! the error-frame surface (unknown tenant, oversized batches, invalid
//! rounds, duplicate registration), and the admission-control contract — a
//! wedged shard answers with a retryable `overloaded` error frame instead of
//! parking the connection.

mod common;

use std::sync::Arc;

use common::{assert_golden, golden_specs, test_shards};
use netband::net::proto::{decision_to_wire, event_from_wire, event_to_wire};
use netband::prelude::*;

/// An engine fronted by a loopback server, plus one connected client. The
/// served engines default to a single shard but honour `NETBAND_TEST_SHARDS`
/// (tenants are shard-pinned, so the golden comparisons — always against a
/// 1-shard reference — must hold at any shard count, above or below the
/// machine's core count).
fn loopback(engine: ServeEngine, config: ServerConfig) -> (NetServer, NetClient) {
    let server =
        NetServer::bind(Arc::new(engine), "127.0.0.1:0", config).expect("bind loopback server");
    let client = NetClient::connect(server.local_addr()).expect("connect loopback client");
    (server, client)
}

fn placeholder_event() -> WireEvent {
    WireEvent::Single(SinglePlayFeedback {
        arm: 0,
        direct_reward: 0.0,
        side_reward: 0.0,
        observations: vec![],
    })
}

// ----- golden traces over a real socket ------------------------------------

/// The flagship equivalence: each golden scenario is registered **over the
/// wire from its spec document** and served decision by decision through a
/// real TCP client, in lockstep with an in-process reference engine. Every
/// reply must match the reference bit for bit, and the evicted tenant must
/// reproduce the committed golden fixture.
#[test]
fn tcp_round_trip_reproduces_all_four_golden_traces() {
    let (server, mut client) = loopback(
        ServeEngine::with_shards(test_shards(1)),
        ServerConfig::default(),
    );
    for (fixture, spec) in golden_specs() {
        let reference = ServeEngine::with_shards(1);
        reference
            .register_tenant_spec(&RegisterTenantSpec::new(fixture, spec.clone()))
            .expect("register reference tenant");
        client
            .register_tenant(fixture, spec.clone())
            .expect("register tenant over the wire");

        for round in 0..spec.horizon {
            let expected = reference.decide(fixture).expect("reference decide");
            let mut replies = client.decide_many(fixture, 1).expect("wire decide");
            assert_eq!(replies.len(), 1, "{fixture}: one decision per request");
            let reply = replies.pop().unwrap();

            assert_eq!(reply.round, expected.round, "{fixture} round {round}");
            assert_eq!(
                reply.decision,
                decision_to_wire(&expected.decision),
                "{fixture} round {round}: decision diverged over the wire"
            );
            assert_eq!(
                reply.reward.to_bits(),
                expected.reward.to_bits(),
                "{fixture} round {round}: reward not bit-exact over the wire"
            );
            let event = reply.feedback.expect("wire reply echoes feedback");
            let expected_event = expected.feedback.expect("reference echoes feedback");
            assert_eq!(
                event,
                event_to_wire(&expected_event),
                "{fixture} round {round}: echoed feedback diverged"
            );

            // Close the loop on both sides with the *wire* event, so the
            // feedback path is exercised end to end too.
            reference
                .feedback(fixture, expected.round, event_from_wire(event.clone()))
                .expect("reference feedback");
            let accepted = client
                .feedback_many(
                    fixture,
                    vec![WireFeedback {
                        round: reply.round,
                        event,
                    }],
                )
                .expect("wire feedback");
            assert_eq!(accepted, 1, "{fixture} round {round}");
        }

        let served = server
            .engine()
            .evict_tenant(fixture)
            .expect("evict wire tenant")
            .run_result();
        let expected = reference
            .evict_tenant(fixture)
            .expect("evict reference tenant")
            .run_result();
        reference.shutdown();

        // The TCP-served trajectory IS the committed golden fixture...
        assert_golden(fixture, &served);
        // ...and agrees with the in-process engine on every field.
        assert_eq!(served.trace, expected.trace, "{fixture}: trace drifted");
        assert_eq!(
            served.total_reward.to_bits(),
            expected.total_reward.to_bits(),
            "{fixture}: total reward drifted"
        );
    }
    server.shutdown();
}

// ----- chunked wire batches ≡ the in-process batched client ----------------

/// Serving in chunks over the wire (one `decide_many` frame per chunk, one
/// `feedback_many` frame per window) equals the in-process [`ServeClient`]
/// running the identical chunk sequence — batching and transport change
/// nothing about the trajectory, even under a batched flush policy.
#[test]
fn chunked_wire_batches_match_the_in_process_batched_client() {
    let (_, mut spec) = golden_specs().remove(2); // dfl_cso
    spec.feedback = FeedbackSpec::Batched { max_pending: 8 };
    const CHUNK: usize = 16;

    let (server, mut client) = loopback(
        ServeEngine::with_shards(test_shards(1)),
        ServerConfig::default(),
    );
    client
        .register_tenant("wire", spec.clone())
        .expect("register wire tenant");

    let reference = ServeEngine::with_shards(1);
    reference
        .register_tenant_spec(&RegisterTenantSpec::new("ref", spec.clone()))
        .expect("register reference tenant");
    let mut ref_client = reference.client();
    let mut out: Vec<Result<DecideReply, ServeError>> = Vec::new();

    let mut served = 0;
    while served < spec.horizon {
        let n = CHUNK.min(spec.horizon - served);
        let replies = client.decide_many("wire", n as u32).expect("wire chunk");
        ref_client
            .decide_many("ref", n, &mut out)
            .expect("reference chunk");
        assert_eq!(replies.len(), n);
        assert_eq!(out.len(), n);

        let mut wire_window = Vec::with_capacity(n);
        let mut ref_window = Vec::with_capacity(n);
        for (reply, expected) in replies.into_iter().zip(&out) {
            let expected = expected.as_ref().expect("reference decision");
            assert_eq!(reply.round, expected.round);
            assert_eq!(reply.decision, decision_to_wire(&expected.decision));
            assert_eq!(reply.reward.to_bits(), expected.reward.to_bits());
            let event = reply.feedback.expect("echoed feedback");
            ref_window.push((reply.round, event_from_wire(event.clone())));
            wire_window.push(WireFeedback {
                round: reply.round,
                event,
            });
        }
        let accepted = client
            .feedback_many("wire", wire_window)
            .expect("wire feedback window");
        assert_eq!(accepted, n as u64);
        ref_client
            .feedback_many("ref", ref_window)
            .expect("reference feedback window");
        served += n;
    }

    let wire_result = server
        .engine()
        .evict_tenant("wire")
        .expect("evict wire tenant")
        .run_result();
    let ref_result = reference
        .evict_tenant("ref")
        .expect("evict reference tenant")
        .run_result();
    reference.shutdown();
    server.shutdown();

    assert_eq!(wire_result.trace, ref_result.trace, "trace drifted");
    assert_eq!(
        wire_result.total_reward.to_bits(),
        ref_result.total_reward.to_bits(),
        "total reward drifted"
    );
}

// ----- the error-frame surface ---------------------------------------------

/// Protocol misuse draws typed error frames and leaves the connection
/// serviceable (only oversized *frames* close it).
#[test]
fn misuse_draws_typed_error_frames_and_keeps_the_connection_open() {
    let config = ServerConfig {
        max_batch: 4,
        ..ServerConfig::default()
    };
    let (server, mut client) = loopback(ServeEngine::with_shards(1), config);
    let (fixture, spec) = golden_specs().remove(0);

    fn expect_code(err: &NetError, want: WireErrorCode) {
        match err {
            NetError::Server { code, .. } => assert_eq!(*code, want),
            other => panic!("expected {want} error frame, got {other}"),
        }
    }

    // Unknown tenant.
    let err = client.decide_many("nobody", 1).unwrap_err();
    expect_code(&err, WireErrorCode::UnknownTenant);

    // Zero-decision batches are meaningless.
    client.register_tenant(fixture, spec.clone()).unwrap();
    let err = client.decide_many(fixture, 0).unwrap_err();
    expect_code(&err, WireErrorCode::Invalid);

    // Batches above the server's cap.
    let err = client.decide_many(fixture, 5).unwrap_err();
    expect_code(&err, WireErrorCode::TooLarge);
    let window: Vec<WireFeedback> = (0..5)
        .map(|round| WireFeedback {
            round,
            event: placeholder_event(),
        })
        .collect();
    let err = client.feedback_many(fixture, window).unwrap_err();
    expect_code(&err, WireErrorCode::TooLarge);

    // Feedback ingestion is fire-and-forget: an event quoting a round the
    // tenant never served is *accepted* on the wire, dropped by the shard,
    // and surfaces in the metrics frame's rejected counter.
    let accepted = client
        .feedback_many(
            fixture,
            vec![WireFeedback {
                round: 999,
                event: placeholder_event(),
            }],
        )
        .expect("window is enqueued");
    assert_eq!(accepted, 1);
    server.engine().drain().expect("barrier");
    let metrics = client.metrics().expect("metrics frame");
    assert_eq!(metrics.rejected, 1, "dropped event not counted");

    // Double registration.
    let err = client.register_tenant(fixture, spec).unwrap_err();
    expect_code(&err, WireErrorCode::DuplicateTenant);

    // After all of that the connection still serves normally.
    let replies = client.decide_many(fixture, 2).expect("connection survives");
    assert_eq!(replies.len(), 2);
    server.shutdown();
}

/// The admission-control contract of the front end: a full shard queue
/// surfaces as a **retryable `overloaded` error frame** — the server answers
/// immediately instead of parking the connection, and the same request
/// succeeds once the shard drains.
#[test]
fn overloaded_shards_answer_with_a_retryable_error_frame() {
    let engine = ServeEngine::start(EngineConfig::new(1).with_queue_capacity(1));
    let (server, mut client) = loopback(engine, ServerConfig::default());
    let (fixture, spec) = golden_specs().remove(0);
    client.register_tenant(fixture, spec).expect("register");

    // Wedge the only shard: its worker is blocked and its queue is full, so
    // the server's try_* admission paths must reject deterministically.
    let wedge = server.engine().wedge_shard(0);

    let err = client.decide_many(fixture, 4).unwrap_err();
    assert!(
        err.is_overloaded(),
        "expected an overloaded error frame, got {err}"
    );
    let err = client
        .feedback_many(
            fixture,
            vec![WireFeedback {
                round: 0,
                event: placeholder_event(),
            }],
        )
        .unwrap_err();
    assert!(
        err.is_overloaded(),
        "expected an overloaded error frame, got {err}"
    );

    // Release the shard: the retried request goes straight through.
    drop(wedge);
    let replies = client.decide_many(fixture, 4).expect("retry after release");
    assert_eq!(replies.len(), 4);
    for reply in &replies {
        let event = reply.feedback.clone().expect("echoed feedback");
        // Feedback admission is asynchronous (the shard drains the 1-slot
        // queue behind the accepted reply), so back-to-back windows can
        // legitimately draw a retryable overloaded frame — retry like a
        // real client would.
        let accepted = loop {
            match client.feedback_many(
                fixture,
                vec![WireFeedback {
                    round: reply.round,
                    event: event.clone(),
                }],
            ) {
                Ok(accepted) => break accepted,
                Err(err) if err.is_overloaded() => std::thread::yield_now(),
                Err(err) => panic!("feedback after release: {err}"),
            }
        };
        assert_eq!(accepted, 1);
    }
    server.shutdown();
}

// ----- wire documents carry env payloads losslessly ------------------------

/// Feedback events survive the wire document round trip bit for bit in both
/// directions (serve → wire → JSON → wire → serve).
#[test]
fn feedback_events_round_trip_bit_exactly_through_the_wire_documents() {
    let events = vec![
        FeedbackEvent::Single(SinglePlayFeedback {
            arm: 3,
            direct_reward: 0.1 + 0.2, // not representable exactly — the acid test
            side_reward: f64::MIN_POSITIVE,
            observations: vec![(0, 1.0e-300), (7, 0.30000000000000004)],
        }),
        FeedbackEvent::Combinatorial(CombinatorialFeedback {
            strategy: vec![1, 4, 9],
            observation_set: vec![1, 2, 4, 8, 9],
            direct_reward: 1.0 / 3.0,
            side_reward: -0.0,
            observations: vec![(2, 2.0f64.sqrt())],
        }),
    ];
    for event in events {
        let wire = event_to_wire(&event);
        let text = WireRequest::FeedbackMany {
            tenant: "t".into(),
            events: vec![WireFeedback {
                round: 0,
                event: wire.clone(),
            }],
        }
        .to_json_text();
        let back = match WireRequest::from_json_text(&text).expect("reparse") {
            WireRequest::FeedbackMany { mut events, .. } => events.pop().unwrap().event,
            other => panic!("wrong request kind: {other:?}"),
        };
        assert_eq!(back, wire, "JSON round trip changed the event");
        // And back into a serve event without loss.
        match (event_from_wire(back), event) {
            (FeedbackEvent::Single(a), FeedbackEvent::Single(b)) => {
                assert_eq!(a.direct_reward.to_bits(), b.direct_reward.to_bits());
                assert_eq!(a.side_reward.to_bits(), b.side_reward.to_bits());
                assert_eq!(a.observations, b.observations);
            }
            (FeedbackEvent::Combinatorial(a), FeedbackEvent::Combinatorial(b)) => {
                assert_eq!(a.direct_reward.to_bits(), b.direct_reward.to_bits());
                assert_eq!(a.side_reward.to_bits(), b.side_reward.to_bits());
                assert_eq!(a.observations, b.observations);
            }
            (a, b) => panic!("event kind flipped: {a:?} vs {b:?}"),
        }
    }
}
