//! Cross-crate property-based tests (proptest) on the invariants the paper's
//! analysis relies on: clique covers, strategy relation graphs, oracle
//! optimality, index monotonicity, feasibility of policy decisions, and regret
//! accounting.

use netband::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy that produces a random relation graph as (num_vertices, edge list).
fn arb_graph(max_vertices: usize) -> impl Strategy<Value = RelationGraph> {
    (2usize..=max_vertices).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |pairs| {
            let edges: Vec<(usize, usize)> = pairs.into_iter().filter(|&(u, v)| u != v).collect();
            RelationGraph::from_edges(n, &edges)
        })
    })
}

fn arb_weights(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_clique_cover_is_always_valid(graph in arb_graph(16)) {
        let cover = greedy_clique_cover(&graph);
        prop_assert!(cover.is_valid_for(&graph));
        prop_assert!(cover.len() <= graph.num_vertices());
        // A cover can never use fewer cliques than K / (max clique size found).
        let max_size = cover.max_clique_size().max(1);
        prop_assert!(cover.len() * max_size >= graph.num_vertices());
    }

    #[test]
    fn closed_neighborhoods_are_sorted_and_contain_self(graph in arb_graph(16)) {
        for v in graph.vertices() {
            let n = graph.closed_neighborhood(v);
            prop_assert!(n.contains(&v));
            prop_assert!(n.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(n.len(), graph.degree(v) + 1);
        }
    }

    #[test]
    fn strategy_relation_graph_is_symmetric_and_consistent(graph in arb_graph(10)) {
        let family = StrategyFamily::independent_sets(2);
        let strategies = family.enumerate(&graph).unwrap();
        let sg = StrategyRelationGraph::build(&graph, strategies);
        for x in 0..sg.num_strategies() {
            // Y_x contains the component arms.
            for arm in sg.strategy(x) {
                prop_assert!(sg.observation_set(x).contains(arm));
            }
            for &y in sg.neighbors(x) {
                // Neighbourhood in SG means mutual observability.
                prop_assert!(sg.strategy(x).iter().all(|a| sg.observation_set(y).contains(a)));
                prop_assert!(sg.strategy(y).iter().all(|a| sg.observation_set(x).contains(a)));
                // Symmetry.
                prop_assert!(sg.neighbors(y).contains(&x));
            }
        }
    }

    #[test]
    fn oracles_match_brute_force_on_small_instances(
        graph in arb_graph(8),
        weights in arb_weights(8),
    ) {
        let k = graph.num_vertices();
        let weights = &weights[..k];
        for family in [
            StrategyFamily::at_most_m(k, 2),
            StrategyFamily::exactly_m(k, 2.min(k)),
            StrategyFamily::independent_sets(2),
        ] {
            let Some(all) = family.enumerate(&graph) else { continue };
            if all.is_empty() { continue; }
            // Direct-weight oracle.
            let fast = family.argmax_by_arm_weights(weights, &graph).unwrap();
            let direct = |s: &[usize]| s.iter().map(|&i| weights[i]).sum::<f64>();
            let best_direct = all.iter().map(&direct).fold(f64::MIN, f64::max);
            prop_assert!((direct(&fast) - best_direct).abs() < 1e-9);
            // Neighbourhood-weight oracle.
            let fast_cov = family.argmax_by_neighborhood_weights(weights, &graph).unwrap();
            let coverage = |s: &[usize]| graph
                .closed_neighborhood_of_set(s)
                .iter()
                .map(|&i| weights[i])
                .sum::<f64>();
            let best_cov = all.iter().map(&coverage).fold(f64::MIN, f64::max);
            prop_assert!((coverage(&fast_cov) - best_cov).abs() < 1e-9);
        }
    }

    /// Flat-bank storage is lossless: any nested strategy list round-trips
    /// through `StrategyBank` with rows, lengths, and order preserved
    /// verbatim.
    #[test]
    fn strategy_bank_round_trips_nested_rows(
        rows in proptest::collection::vec(
            proptest::collection::vec(0usize..32, 0..6),
            0..24,
        ),
    ) {
        let bank = StrategyBank::from(rows.clone());
        prop_assert_eq!(bank.len(), rows.len());
        prop_assert_eq!(bank.is_empty(), rows.is_empty());
        prop_assert_eq!(bank.max_row_len(), rows.iter().map(Vec::len).max().unwrap_or(0));
        prop_assert_eq!(bank.arms().len(), rows.iter().map(Vec::len).sum::<usize>());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(bank.row(i), row.as_slice());
            prop_assert_eq!(bank.row_len(i), row.len());
        }
        let via_iter: Vec<Vec<usize>> = bank.iter().map(<[usize]>::to_vec).collect();
        prop_assert_eq!(&via_iter, &rows);
        prop_assert_eq!(bank.to_rows(), rows.clone());
        // Streaming construction produces the identical bank.
        let streamed: StrategyBank = rows.into_iter().collect();
        prop_assert_eq!(streamed, bank);
    }

    /// The flat bank oracle scans must return exactly — same strategy, same
    /// tie-break — what the pre-bank nested `Vec<Vec<ArmId>>` scans returned
    /// (`Iterator::max_by` over enumerated rows, last maximum wins).
    #[test]
    fn bank_oracle_scans_match_the_nested_reference(
        graph in arb_graph(8),
        weights in arb_weights(8),
    ) {
        use netband::env::feasible::{neighborhood_weight, strategy_weight};

        let k = graph.num_vertices();
        let weights = &weights[..k];
        let families = [
            StrategyFamily::independent_sets(2),
            StrategyFamily::explicit(
                StrategyFamily::independent_sets(2).enumerate(&graph).unwrap(),
            ),
        ];
        for family in families {
            let rows = family.enumerate(&graph).unwrap().to_rows();
            if rows.is_empty() { continue; }
            // The old enumerated arm-weight scan, verbatim.
            let nested_arm = rows.clone().into_iter().max_by(|a, b| {
                strategy_weight(a, weights)
                    .partial_cmp(&strategy_weight(b, weights))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            prop_assert_eq!(
                family.argmax_by_arm_weights(weights, &graph),
                nested_arm,
                "arm-weight scan drifted for {:?}",
                family
            );
            // The old enumerated neighbourhood-weight scan, verbatim.
            let nested_cov = rows.into_iter().max_by(|a, b| {
                neighborhood_weight(a, weights, &graph)
                    .partial_cmp(&neighborhood_weight(b, weights, &graph))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            prop_assert_eq!(
                family.argmax_by_neighborhood_weights(weights, &graph),
                nested_cov,
                "neighbourhood-weight scan drifted for {:?}",
                family
            );
        }
    }

    #[test]
    fn running_mean_equals_batch_mean(values in proptest::collection::vec(0.0f64..1.0, 1..200)) {
        let mut rm = RunningMean::new();
        for &v in &values {
            rm.update(v);
        }
        let batch = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((rm.mean() - batch).abs() < 1e-9);
        prop_assert_eq!(rm.count(), values.len() as u64);
    }

    #[test]
    fn moss_index_is_monotone_in_mean_and_antitone_in_count(
        mean_a in 0.0f64..1.0,
        mean_b in 0.0f64..1.0,
        count in 1u64..1000,
        t in 1usize..100_000,
    ) {
        let k = 10;
        // Monotone in the empirical mean.
        let lo = moss_index(mean_a.min(mean_b), count, t, k);
        let hi = moss_index(mean_a.max(mean_b), count, t, k);
        prop_assert!(hi >= lo);
        // Non-increasing in the observation count (same mean).
        let few = moss_index(mean_a, count, t, k);
        let more = moss_index(mean_a, count + 10, t, k);
        prop_assert!(more <= few + 1e-12);
    }

    #[test]
    fn dfl_policies_only_propose_feasible_strategies(
        seed in 0u64..1000,
        edge_prob in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::erdos_renyi(8, edge_prob, &mut rng);
        let arms = ArmSet::random_bernoulli(8, &mut rng);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let family = StrategyFamily::independent_sets(2);
        let mut policy = DflCsr::new(graph.clone(), family.clone());
        for t in 1..=30 {
            let s = policy.select_strategy(t);
            prop_assert!(family.contains(&s, &graph), "infeasible {:?}", s);
            let fb = bandit.pull_strategy(&s, &mut rng).unwrap();
            policy.update(t, &fb);
        }
    }

    #[test]
    fn regret_trace_invariants(
        seed in 0u64..500,
        horizon in 1usize..400,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::erdos_renyi(6, 0.4, &mut rng);
        let arms = ArmSet::random_bernoulli(6, &mut rng);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let mut policy = DflSso::new(graph);
        let result = run_single(&bandit, &mut policy, SingleScenario::SideObservation, horizon, seed);
        // Pseudo-regret per round is within [0, 1] for direct rewards in [0, 1].
        prop_assert!(result.trace.pseudo().iter().all(|&r| (-1e-9..=1.0 + 1e-9).contains(&r)));
        // Realised regret per round is within [-1, 1].
        prop_assert!(result.trace.realised().iter().all(|&r| (-1.0 - 1e-9..=1.0 + 1e-9).contains(&r)));
        // Cumulative regret is consistent with the per-round records.
        let cum = result.trace.cumulative();
        prop_assert!((cum.last().copied().unwrap_or(0.0) - result.total_regret()).abs() < 1e-9);
        // Reward + regret = horizon × optimal.
        let total = result.total_reward + result.total_regret();
        prop_assert!((total - result.optimal_mean * horizon as f64).abs() < 1e-6);
    }

    #[test]
    fn csr_graph_round_trips_relation_graph(graph in arb_graph(16)) {
        let csr = graph.to_csr();
        prop_assert_eq!(csr.num_vertices(), graph.num_vertices());
        prop_assert_eq!(csr.num_edges(), graph.num_edges());
        prop_assert_eq!(csr.max_degree(), graph.max_degree());
        prop_assert_eq!(csr.max_closed_neighborhood(), graph.max_closed_neighborhood());
        for v in graph.vertices() {
            prop_assert_eq!(csr.neighbors(v), graph.neighbors(v), "open row of {}", v);
            prop_assert_eq!(csr.degree(v), graph.degree(v), "degree of {}", v);
            prop_assert_eq!(
                csr.closed_neighborhood(v),
                graph.closed_neighborhood(v).as_slice(),
                "closed row of {}", v
            );
            for u in graph.vertices() {
                prop_assert_eq!(csr.has_edge(v, u), graph.has_edge(v, u));
            }
        }
        // Thawing the snapshot reproduces the original graph exactly.
        prop_assert_eq!(&csr.to_relation_graph(), &graph);
        // The precomputed clique tables are the greedy cover, and a partition.
        let cover = greedy_clique_cover(&graph);
        prop_assert_eq!(csr.num_cliques(), cover.len());
        for (c, clique) in cover.cliques().iter().enumerate() {
            prop_assert_eq!(csr.clique(c), clique.as_slice());
        }
        for v in graph.vertices() {
            prop_assert!(csr.clique(csr.clique_of(v)).contains(&v));
        }
    }

    #[test]
    fn csr_set_union_matches_reference(
        graph in arb_graph(12),
        raw_set in proptest::collection::vec(0usize..12, 0..6),
    ) {
        let k = graph.num_vertices();
        let set: Vec<usize> = raw_set.into_iter().filter(|&v| v < k).collect();
        let csr = graph.to_csr();
        let mut mark = Vec::new();
        let mut out = Vec::new();
        csr.closed_neighborhood_of_set_into(&set, &mut mark, &mut out);
        prop_assert_eq!(out, graph.closed_neighborhood_of_set(&set));
        prop_assert!(mark.iter().all(|&m| !m), "marks must be reset after use");
    }

    #[test]
    fn feasible_oracle_sampling_respects_cardinality(
        graph in arb_graph(10),
        weights in arb_weights(10),
        m in 1usize..4,
    ) {
        let k = graph.num_vertices();
        let weights = &weights[..k];
        for family in [
            StrategyFamily::at_most_m(k, m),
            StrategyFamily::exactly_m(k, m.min(k)),
            StrategyFamily::independent_sets(m),
        ] {
            for strategy in [
                family.argmax_by_arm_weights(weights, &graph),
                family.argmax_by_neighborhood_weights(weights, &graph),
            ].into_iter().flatten() {
                prop_assert!(!strategy.is_empty());
                prop_assert!(
                    strategy.len() <= family.max_size(),
                    "{:?} breaks the cardinality cap of {:?}", strategy, family
                );
                prop_assert!(
                    family.contains(&strategy, &graph),
                    "{:?} is not a member of {:?}", strategy, family
                );
            }
        }
    }

    #[test]
    fn pull_buffer_matches_allocating_pulls(
        seed in 0u64..500,
        edge_prob in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::erdos_renyi(7, edge_prob, &mut rng);
        let arms = ArmSet::random_bernoulli(7, &mut rng);
        let bandit = NetworkedBandit::new(graph, arms).unwrap();
        // Identical RNG state in, bit-identical feedback out.
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut rng_b = rng_a.clone();
        let mut buf = PullBuffer::new();
        for round in 0..10 {
            let arm = round % 7;
            let alloc = bandit.pull_single(arm, &mut rng_a);
            let reused = buf.pull_single(&bandit, arm, &mut rng_b);
            prop_assert_eq!(&alloc, reused, "single pull, round {}", round);
            let strategy = [arm, (arm + 3) % 7];
            let alloc = bandit.pull_strategy(&strategy, &mut rng_a).unwrap();
            let reused = buf.pull_strategy(&bandit, &strategy, &mut rng_b).unwrap();
            prop_assert_eq!(&alloc, reused, "strategy pull, round {}", round);
        }
    }

    #[test]
    fn environment_feedback_is_consistent(
        seed in 0u64..500,
        edge_prob in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::erdos_renyi(7, edge_prob, &mut rng);
        let arms = ArmSet::random_bernoulli(7, &mut rng);
        let bandit = NetworkedBandit::new(graph.clone(), arms).unwrap();
        let samples = bandit.sample_rewards(&mut rng);
        for arm in 0..7 {
            let fb = bandit.feedback_single_from_samples(arm, &samples);
            // Direct reward is the pulled arm's sample.
            prop_assert_eq!(fb.direct_reward, samples[arm]);
            // Observations are exactly the closed neighbourhood.
            let observed: Vec<usize> = fb.observations.iter().map(|&(a, _)| a).collect();
            prop_assert_eq!(observed, graph.closed_neighborhood(arm));
            // Side reward is the sum of the observed samples.
            let sum: f64 = fb.observations.iter().map(|&(_, x)| x).sum();
            prop_assert!((fb.side_reward - sum).abs() < 1e-12);
        }
    }
}

// ----- nonstationary estimators: γ = 1.0 is the stationary path ------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `EstimatorKind::Discounted { gamma: 1.0 }` must be **bit-identical** to
    /// the stationary estimator under any interleaving of updates and round
    /// advances: the discount multiply is skipped at γ = 1.0, so the weights
    /// stay exact integers and every mean folds in the same order.
    #[test]
    fn discount_one_estimators_match_stationary_bit_exactly(
        k in 1usize..8,
        ops in proptest::collection::vec((0usize..8, 0.0f64..1.0, 0usize..3), 1..120),
    ) {
        let mut stationary = ArmEstimators::new(k);
        let mut discounted =
            ArmEstimators::with_kind(k, EstimatorKind::Discounted { gamma: 1.0 });
        for &(arm, value, advance) in &ops {
            let arm = arm % k;
            if advance == 0 {
                stationary.advance_round();
                discounted.advance_round();
            }
            stationary.update(arm, value);
            discounted.update(arm, value);
        }
        for i in 0..k {
            prop_assert_eq!(stationary.count(i), discounted.count(i));
            prop_assert_eq!(
                stationary.mean(i).to_bits(),
                discounted.mean(i).to_bits(),
                "arm {} mean diverged", i
            );
            prop_assert_eq!(
                stationary.effective_count(i).to_bits(),
                discounted.effective_count(i).to_bits(),
                "arm {} effective count diverged", i
            );
        }
    }

    /// End to end: a CTS run with `discounted(γ = 1.0)` produces the same
    /// trace, reward, and benchmark bits as the stationary CTS run on the same
    /// scenario — only the report name differs (CTS-D vs CTS).
    #[test]
    fn cts_discount_one_runs_match_stationary_bit_exactly(
        num_arms in 3usize..9,
        edge_prob in 0.1f64..0.9,
        workload_seed in 0u64..1_000,
        run_seed in 0u64..1_000,
        horizon in 1usize..60,
    ) {
        let scenario = |estimator: Option<EstimatorSpec>| ScenarioSpec {
            version: SPEC_VERSION,
            name: "prop/discount-one".into(),
            workload: WorkloadSpec {
                graph: GraphSpec::ErdosRenyi { num_arms, edge_prob },
                arms: ArmsSpec::UniformMeanBernoulli { num_arms },
                family: Some(FamilySpec::AtMostM { m: 2 }),
                drift: None,
                seed: workload_seed,
            },
            policy: PolicySpec::Cts { seed: run_seed, estimator },
            side_bonus: SideBonus::Observation,
            horizon,
            replications: 1,
            seed: run_seed,
            feedback: FeedbackSpec::Immediate,
        };
        let stationary = run_spec(&scenario(None)).expect("stationary CTS runs");
        let discounted = run_spec(&scenario(Some(EstimatorSpec::Discounted { gamma: 1.0 })))
            .expect("discounted CTS runs");
        prop_assert_eq!(&stationary.policy, "CTS");
        prop_assert_eq!(&discounted.policy, "CTS-D");
        prop_assert_eq!(
            stationary.total_reward.to_bits(),
            discounted.total_reward.to_bits()
        );
        prop_assert_eq!(
            stationary.optimal_mean.to_bits(),
            discounted.optimal_mean.to_bits()
        );
        for t in 0..horizon {
            prop_assert_eq!(
                stationary.trace.realised()[t].to_bits(),
                discounted.trace.realised()[t].to_bits(),
                "realised regret diverged at round {}", t + 1
            );
            prop_assert_eq!(
                stationary.trace.pseudo()[t].to_bits(),
                discounted.trace.pseudo()[t].to_bits(),
                "pseudo regret diverged at round {}", t + 1
            );
        }
    }
}
