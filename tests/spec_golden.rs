//! Spec-equivalence suite: declarative [`ScenarioSpec`] documents must
//! reproduce the committed golden DFL traces **bit for bit**.
//!
//! `tests/fixtures/golden_*.json` pins the exact per-round behaviour of the
//! four DFL policies on one fixed Erdős–Rényi instance (see
//! `tests/common/mod.rs`). The batch runners (`tests/golden_traces.rs`) and
//! the serving engine (`tests/serve_equivalence.rs`) are already held to
//! those fixtures; this suite holds the **spec pipeline** to them too:
//!
//! * `ScenarioSpec → build → run_spec` equals the hand-wired runner path;
//! * `ScenarioSpec → JSON text → parse → run_spec` equals it as well (the
//!   whole document round trip preserves every bit);
//! * a tenant registered on a `ServeEngine` **from the same document**
//!   re-serves the same trajectory.
//!
//! Plus the schema-level guarantees: every `PolicySpec` variant constructs
//! its policy, and unknown fields / unknown versions are rejected.

mod common;

use common::{assert_golden, fixture_instance, golden_scenario, golden_specs, golden_workload};
use netband::prelude::*;

// ----- spec → build → run equals the committed fixtures --------------------

#[test]
fn spec_built_runs_reproduce_all_four_golden_traces() {
    for (fixture, spec) in golden_specs() {
        // The spec-built workload is the fixture instance, bit for bit.
        let workload = spec.workload.build().expect("golden workload builds");
        assert_eq!(
            workload.bandit,
            fixture_instance(),
            "{fixture}: spec-built instance drifted"
        );
        let result = run_spec(&spec).expect("golden spec runs");
        assert_golden(fixture, &result);
    }
}

/// The whole document pipeline — serialize to JSON text, parse back, build,
/// run — preserves the traces bit for bit.
#[test]
fn golden_traces_survive_the_json_round_trip() {
    for (fixture, spec) in golden_specs() {
        let text = spec.to_json_text();
        let parsed = ScenarioSpec::from_json_text(&text)
            .unwrap_or_else(|e| panic!("{fixture}: reparse failed: {e}\n{text}"));
        assert_eq!(
            parsed, spec,
            "{fixture}: document round trip changed the spec"
        );
        let result = run_spec(&parsed).expect("reparsed golden spec runs");
        assert_golden(fixture, &result);
    }
}

// ----- serve: a tenant registered from the document re-serves the trace ----

/// Registering the golden scenarios on a single-shard engine **from the spec
/// document** and closing the feedback loop reproduces the same run results
/// as `run_spec` — engine, simulator, and spec pipeline are one algorithm.
#[test]
fn spec_registered_tenants_serve_the_golden_trajectories() {
    for (fixture, spec) in golden_specs() {
        let expected = run_spec(&spec).expect("golden spec runs");
        let engine = ServeEngine::with_shards(1);
        engine
            .register_tenant_spec(&RegisterTenantSpec::new(fixture, spec.clone()))
            .expect("register from spec");
        for _ in 0..spec.horizon {
            let reply = engine.decide(fixture).expect("decide");
            let event = reply.feedback.expect("echoed feedback");
            engine
                .feedback(fixture, reply.round, event)
                .expect("feedback");
        }
        let snapshot = engine.evict_tenant(fixture).expect("evict");
        engine.shutdown();
        let served = snapshot.run_result();
        assert_eq!(served.policy, expected.policy, "{fixture}");
        assert_eq!(served.horizon, expected.horizon, "{fixture}");
        assert_eq!(
            served.optimal_mean.to_bits(),
            expected.optimal_mean.to_bits(),
            "{fixture}: benchmark drifted"
        );
        assert_eq!(
            served.total_reward.to_bits(),
            expected.total_reward.to_bits(),
            "{fixture}: total reward drifted"
        );
        assert_eq!(served.trace, expected.trace, "{fixture}: trace drifted");
    }
}

// ----- every policy is constructible from a PolicySpec ---------------------

/// The acceptance criterion of the spec redesign: every policy in
/// `netband-core` and `netband-baselines` is constructible from a
/// [`PolicySpec`] variant, with the play mode and report name the spec
/// declares.
#[test]
fn every_policy_spec_variant_constructs_its_policy() {
    let all: Vec<PolicySpec> = vec![
        PolicySpec::DflSso,
        PolicySpec::DflSsr,
        PolicySpec::DflCso,
        PolicySpec::DflCsr,
        PolicySpec::DflSsoGreedyNeighbor,
        PolicySpec::DflSsrGreedyNeighbor,
        PolicySpec::Moss { horizon: None },
        PolicySpec::Moss {
            horizon: Some(1_000),
        },
        PolicySpec::Ucb1,
        PolicySpec::UcbTuned,
        PolicySpec::KlUcb { c: None },
        PolicySpec::KlUcb { c: Some(3.0) },
        PolicySpec::UcbV {
            zeta: None,
            c: None,
        },
        PolicySpec::UcbV {
            zeta: Some(1.2),
            c: Some(1.0),
        },
        PolicySpec::EpsilonGreedy {
            epsilon: 0.1,
            seed: 5,
        },
        PolicySpec::DecayingEpsilonGreedy { c: 5.0, seed: 5 },
        PolicySpec::Softmax { tau: 0.1, seed: 5 },
        PolicySpec::Exp3 {
            gamma: 0.05,
            seed: 5,
        },
        PolicySpec::ThompsonBernoulli { seed: 5 },
        PolicySpec::RandomSingle { seed: 5 },
        PolicySpec::Cucb,
        PolicySpec::Llr,
        PolicySpec::CombEpsilonGreedy { c: 5.0, seed: 5 },
        PolicySpec::NaiveComArmMoss,
        PolicySpec::RandomCombinatorial { seed: 5 },
        PolicySpec::Cts {
            seed: 5,
            estimator: None,
        },
        PolicySpec::Cts {
            seed: 5,
            estimator: Some(EstimatorSpec::Stationary),
        },
        PolicySpec::Cts {
            seed: 5,
            estimator: Some(EstimatorSpec::Discounted { gamma: 0.99 }),
        },
        PolicySpec::Cts {
            seed: 5,
            estimator: Some(EstimatorSpec::SlidingWindow { window: 200 }),
        },
    ];
    let workload = golden_workload(Some(FamilySpec::AtMostM { m: 3 }))
        .build()
        .expect("workload builds");
    let family = workload.try_family().expect("combinatorial workload");
    for spec in &all {
        let policy = spec
            .build(&workload.bandit, Some(family))
            .unwrap_or_else(|e| panic!("{spec:?} failed to build: {e}"));
        assert_eq!(
            policy.is_single(),
            !spec.is_combinatorial(),
            "{spec:?}: play mode mismatch"
        );
        assert_eq!(
            policy.name(),
            spec.display_name(),
            "{spec:?}: report name mismatch"
        );
        // Each policy also round-trips through the JSON codec inside a full
        // scenario document.
        let scenario = ScenarioSpec {
            policy: spec.clone(),
            side_bonus: if spec.is_combinatorial() {
                SideBonus::Reward
            } else {
                SideBonus::Observation
            },
            ..golden_scenario(
                "sweep",
                PolicySpec::DflSso,
                Some(FamilySpec::AtMostM { m: 3 }),
                SideBonus::Observation,
                10,
            )
        };
        let back = ScenarioSpec::from_json_text(&scenario.to_json_text())
            .unwrap_or_else(|e| panic!("{spec:?}: round trip failed: {e}"));
        assert_eq!(back, scenario, "{spec:?}: round trip changed the document");
    }
}

// ----- schema strictness ---------------------------------------------------

#[test]
fn unknown_fields_are_rejected_everywhere() {
    let (_, spec) = golden_specs().remove(0);
    let text = spec.to_json_text();
    // Top level.
    let bad = text.replacen("\"name\"", "\"nmae\"", 1);
    let err = ScenarioSpec::from_json_text(&bad).unwrap_err();
    assert!(
        matches!(
            err,
            SpecError::UnknownField { .. } | SpecError::MissingField { .. }
        ),
        "{err}"
    );
    // Nested: a typo inside the graph object.
    let bad = text.replacen("\"edge_prob\"", "\"edge_porb\"", 1);
    let err = ScenarioSpec::from_json_text(&bad).unwrap_err();
    assert!(
        matches!(
            err,
            SpecError::UnknownField { .. } | SpecError::MissingField { .. }
        ),
        "{err}"
    );
    // An extra field nobody defined.
    let bad = text.replacen("{\"version\"", "{\"extra\": 1,\"version\"", 1);
    assert!(matches!(
        ScenarioSpec::from_json_text(&bad).unwrap_err(),
        SpecError::UnknownField { .. }
    ));
}

#[test]
fn unknown_versions_and_variants_are_rejected() {
    let (_, spec) = golden_specs().remove(0);
    let text = spec.to_json_text();
    let bad = text.replacen("\"version\":1", "\"version\":2", 1);
    assert_eq!(
        ScenarioSpec::from_json_text(&bad).unwrap_err(),
        SpecError::UnsupportedVersion {
            found: 2,
            supported: SPEC_VERSION
        }
    );
    let bad = text.replacen("\"dfl_sso\"", "\"dfl_xyz\"", 1);
    assert!(matches!(
        ScenarioSpec::from_json_text(&bad).unwrap_err(),
        SpecError::UnknownVariant { .. }
    ));
    // Fleets gate the version too.
    let fleet = FleetSpec {
        version: 9,
        name: "future".into(),
        tenants: vec![],
    };
    assert_eq!(
        FleetSpec::from_json_text(&fleet.to_json_text()).unwrap_err(),
        SpecError::UnsupportedVersion {
            found: 9,
            supported: SPEC_VERSION
        }
    );
}

#[test]
fn zero_batch_feedback_documents_are_rejected() {
    let (_, mut spec) = golden_specs().remove(0);
    spec.feedback = FeedbackSpec::Batched { max_pending: 0 };
    assert!(matches!(
        spec.validate().unwrap_err(),
        SpecError::Invalid { .. }
    ));
    let text = spec.to_json_text();
    assert!(matches!(
        ScenarioSpec::from_json_text(&text).unwrap_err(),
        SpecError::Invalid { .. }
    ));
}

// ----- drift documents: round trip, validation, byte stability -------------

/// Drifting documents (gradual + change points + churn, every estimator kind)
/// survive the JSON round trip exactly.
#[test]
fn drift_documents_round_trip_through_the_codec() {
    let drifts = vec![
        DriftSpec::default(),
        DriftSpec {
            gradual: Some(GradualDriftSpec {
                amplitude: 0.25,
                period: 120,
            }),
            ..DriftSpec::default()
        },
        DriftSpec {
            change_points: vec![
                ChangePointSpec {
                    round: 50,
                    rotation: 3,
                },
                ChangePointSpec {
                    round: 200,
                    rotation: 1,
                },
            ],
            ..DriftSpec::default()
        },
        DriftSpec {
            gradual: Some(GradualDriftSpec {
                amplitude: -0.1,
                period: 1,
            }),
            change_points: vec![ChangePointSpec {
                round: 10,
                rotation: 11,
            }],
            churn: vec![ChurnWindowSpec {
                arm: 4,
                from: 5,
                to: 9,
            }],
        },
    ];
    for drift in drifts {
        let mut spec = golden_scenario(
            "drift-roundtrip",
            PolicySpec::Cts {
                seed: 9,
                estimator: Some(EstimatorSpec::SlidingWindow { window: 64 }),
            },
            Some(FamilySpec::AtMostM { m: 2 }),
            SideBonus::Observation,
            50,
        );
        spec.workload.drift = Some(drift);
        spec.validate().expect("drift document validates");
        let back = ScenarioSpec::from_json_text(&spec.to_json_text())
            .unwrap_or_else(|e| panic!("drift round trip failed: {e}"));
        assert_eq!(back, spec, "drift round trip changed the document");
    }
}

/// The `drift` key is omitted (not encoded as `null`) when absent, so
/// documents written before the key existed re-encode byte-identically.
#[test]
fn stationary_documents_encode_without_a_drift_key() {
    let (_, spec) = golden_specs().remove(0);
    let text = spec.to_json_text();
    assert!(
        !text.contains("drift"),
        "stationary document grew a drift key:\n{text}"
    );
    // And a trivial drift block parses back as Some(default), not as None —
    // the stationary fast-path decision happens at run time, not parse time.
    let with_empty = text.replacen("\"seed\":42", "\"drift\":{},\"seed\":42", 1);
    let parsed = ScenarioSpec::from_json_text(&with_empty).expect("empty drift block parses");
    assert_eq!(parsed.workload.drift, Some(DriftSpec::default()));
}

/// Out-of-range drift and estimator documents are rejected both by
/// `validate()` and at parse time.
#[test]
fn invalid_drift_and_estimator_documents_are_rejected() {
    let base = golden_scenario(
        "drift-invalid",
        PolicySpec::Cts {
            seed: 9,
            estimator: None,
        },
        Some(FamilySpec::AtMostM { m: 2 }),
        SideBonus::Observation,
        50,
    );

    // gamma outside (0, 1].
    for gamma in [0.0, -0.5, 1.5, f64::NAN] {
        let mut spec = base.clone();
        spec.policy = PolicySpec::Cts {
            seed: 9,
            estimator: Some(EstimatorSpec::Discounted { gamma }),
        };
        assert!(
            matches!(spec.validate(), Err(SpecError::Invalid { .. })),
            "gamma {gamma} should be rejected"
        );
    }
    // window = 0.
    let mut spec = base.clone();
    spec.policy = PolicySpec::Cts {
        seed: 9,
        estimator: Some(EstimatorSpec::SlidingWindow { window: 0 }),
    };
    assert!(matches!(spec.validate(), Err(SpecError::Invalid { .. })));

    // Non-increasing change-point rounds.
    let mut spec = base.clone();
    spec.workload.drift = Some(DriftSpec {
        change_points: vec![
            ChangePointSpec {
                round: 100,
                rotation: 1,
            },
            ChangePointSpec {
                round: 100,
                rotation: 2,
            },
        ],
        ..DriftSpec::default()
    });
    assert!(matches!(spec.validate(), Err(SpecError::Invalid { .. })));

    // Churn window naming an arm outside the instance.
    let mut spec = base.clone();
    spec.workload.drift = Some(DriftSpec {
        churn: vec![ChurnWindowSpec {
            arm: 99,
            from: 1,
            to: 2,
        }],
        ..DriftSpec::default()
    });
    assert!(matches!(spec.validate(), Err(SpecError::Invalid { .. })));

    // Empty churn window (from >= to).
    let mut spec = base.clone();
    spec.workload.drift = Some(DriftSpec {
        churn: vec![ChurnWindowSpec {
            arm: 0,
            from: 5,
            to: 5,
        }],
        ..DriftSpec::default()
    });
    assert!(matches!(spec.validate(), Err(SpecError::Invalid { .. })));

    // Parse-time rejection: an invalid gamma inside a document is an error.
    let mut spec = base;
    spec.policy = PolicySpec::Cts {
        seed: 9,
        estimator: Some(EstimatorSpec::Discounted { gamma: 0.995 }),
    };
    let text = spec.to_json_text();
    let bad = text.replacen("0.995", "1.995", 1);
    assert!(matches!(
        ScenarioSpec::from_json_text(&bad),
        Err(SpecError::Invalid { .. })
    ));
    // Unknown estimator tags are unknown variants.
    let bad = text.replacen("\"discounted\"", "\"discount\"", 1);
    assert!(matches!(
        ScenarioSpec::from_json_text(&bad),
        Err(SpecError::UnknownVariant { .. })
    ));
}

// ----- randomized round-trip property --------------------------------------

mod roundtrip {
    use super::*;
    use proptest::prelude::*;

    fn graph_spec(choice: usize, num_arms: usize, p: f64) -> GraphSpec {
        match choice % 5 {
            0 => GraphSpec::ErdosRenyi {
                num_arms,
                edge_prob: p,
            },
            1 => GraphSpec::PreferentialAttachment {
                num_arms,
                edges_per_node: 2,
            },
            2 => GraphSpec::PlantedPartition {
                num_arms,
                communities: 3,
                p_in: p,
                p_out: p / 4.0,
            },
            3 => GraphSpec::RandomGeometric {
                num_arms,
                radius: p,
            },
            _ => GraphSpec::Explicit {
                num_arms,
                edges: (1..num_arms).map(|v| (v - 1, v)).collect(),
            },
        }
    }

    fn arms_spec(choice: usize, num_arms: usize, means: Vec<f64>) -> ArmsSpec {
        match choice % 4 {
            0 => ArmsSpec::UniformMeanBernoulli { num_arms },
            1 => ArmsSpec::Bernoulli { means },
            2 => ArmsSpec::Beta {
                shapes: means.iter().map(|&m| (1.0 + m, 2.0 - m)).collect(),
            },
            _ => ArmsSpec::Uniform {
                ranges: means.iter().map(|&m| (m * 0.5, 0.5 + m * 0.5)).collect(),
            },
        }
    }

    fn policy_spec(choice: usize, x: f64, seed: u64) -> PolicySpec {
        match choice % 10 {
            0 => PolicySpec::DflSso,
            1 => PolicySpec::DflSsr,
            2 => PolicySpec::Moss { horizon: None },
            3 => PolicySpec::Ucb1,
            4 => PolicySpec::KlUcb { c: Some(x) },
            5 => PolicySpec::EpsilonGreedy { epsilon: x, seed },
            6 => PolicySpec::Softmax { tau: x, seed },
            7 => PolicySpec::Exp3 { gamma: x, seed },
            8 => PolicySpec::ThompsonBernoulli { seed },
            _ => PolicySpec::RandomSingle { seed },
        }
    }

    proptest! {
        /// Randomized documents survive `to_json_text` → `from_json_text`
        /// exactly, including f64 hyperparameters and u64 seeds.
        #[test]
        fn scenario_specs_round_trip(
            graph_choice in 0usize..5,
            arms_choice in 0usize..4,
            policy_choice in 0usize..10,
            num_arms in 2usize..20,
            p in 0.05f64..0.9,
            x in 1e-3f64..10.0,
            workload_seed in 0u64..u64::MAX,
            run_seed in 0u64..u64::MAX,
            horizon in 0usize..100_000,
            replications in 1usize..50,
            batched in 0usize..3,
            max_pending in 1usize..4_096,
            side in 0usize..2,
        ) {
            let means: Vec<f64> = (0..num_arms).map(|i| (i as f64 + 0.5) / (num_arms as f64 + 1.0)).collect();
            let spec = ScenarioSpec {
                version: SPEC_VERSION,
                name: format!("prop/{graph_choice}/{arms_choice}/{policy_choice} \"quoted\" \\ π"),
                workload: WorkloadSpec {
                    graph: graph_spec(graph_choice, num_arms, p),
                    arms: arms_spec(arms_choice, num_arms, means),
                    family: None,
                    drift: None,
                    seed: workload_seed,
                },
                policy: policy_spec(policy_choice, x, run_seed),
                side_bonus: if side == 0 { SideBonus::Observation } else { SideBonus::Reward },
                horizon,
                replications,
                seed: run_seed,
                feedback: if batched == 0 {
                    FeedbackSpec::Immediate
                } else {
                    FeedbackSpec::Batched { max_pending }
                },
            };
            let text = spec.to_json_text();
            let back = ScenarioSpec::from_json_text(&text);
            prop_assert!(back.is_ok(), "reparse failed: {:?}\n{}", back.err(), text);
            prop_assert_eq!(back.unwrap(), spec);
        }
    }
}
