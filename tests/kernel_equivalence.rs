//! Property-based equivalence gate for the chunked score kernels
//! (`netband_core::kernels`) and the restructured oracle scans.
//!
//! Every kernel is pinned **bit-exactly** (`f64::to_bits`) against the scalar
//! per-arm index functions it replaced, over arbitrary estimator states
//! (stationary, discounted, and sliding-window histories), arbitrary raw
//! score arrays (including unplayed arms), and arbitrary strategy banks and
//! weight tables (including NaN and ±∞ entries, which exercise the last-max
//! tie-breaking). The suite runs in both debug and release CI jobs: the
//! release run is the one that proves the auto-vectorised code paths stay on
//! the same f64 operation sequence.

use std::cmp::Ordering;

use netband::prelude::*;
use netband_core::estimator::{argmax_last, ArmEstimators, EstimatorKind};
use netband_core::kernels;
use netband_env::feasible::{neighborhood_weight, strategy_weight, FeasibleSet};
use netband_graph::{CsrGraph, StrategyBank};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bitwise equality over score vectors: NaNs of identical payload compare
/// equal, -0.0 and 0.0 do not — exactly the contract the golden traces pin.
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// An arbitrary estimator state: random kind, then a random stream of
/// updates interleaved with `advance_round` calls (which drive the
/// discounted decay and are no-ops for the other kinds).
fn arb_estimators(max_arms: usize) -> impl Strategy<Value = ArmEstimators> {
    let kind = prop_oneof![
        Just(EstimatorKind::Stationary),
        (0.5f64..=1.0).prop_map(|gamma| EstimatorKind::Discounted { gamma }),
        (1usize..12).prop_map(|window| EstimatorKind::SlidingWindow { window }),
    ];
    (1usize..=max_arms, kind).prop_flat_map(|(n, kind)| {
        proptest::collection::vec((0..n, 0.0f64..1.0, proptest::bool::ANY), 0..160).prop_map(
            move |ops| {
                let mut est = ArmEstimators::with_kind(n, kind);
                for (arm, reward, advance) in ops {
                    est.update(arm, reward);
                    if advance {
                        est.advance_round();
                    }
                }
                est
            },
        )
    })
}

/// Arbitrary raw per-arm arrays for the kernels that take plain slices:
/// means in `[0, 1)`, counts with a healthy share of zeros (unplayed-arm
/// sentinels), and non-negative sums of squares.
fn arb_arrays(max_arms: usize) -> impl Strategy<Value = (Vec<f64>, Vec<u64>, Vec<f64>)> {
    (1usize..=max_arms).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.0f64..1.0, n..=n),
            proptest::collection::vec(prop_oneof![Just(0u64), 1u64..500], n..=n),
            proptest::collection::vec(0.0f64..500.0, n..=n),
        )
    })
}

/// A weight-table entry: ordinary values plus the pathological ones that
/// stress the `partial_cmp`-based tie-breaking.
fn arb_weight() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1.0f64..1.0,
        1 => Just(0.0f64),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(f64::NAN),
    ]
}

/// An arbitrary strategy bank over `num_arms + 2` arm ids (the overhang
/// exercises the out-of-range-arm → weight 0.0 path), possibly empty.
fn arb_bank(num_arms: usize) -> impl Strategy<Value = StrategyBank> {
    proptest::collection::vec(proptest::collection::vec(0usize..num_arms + 2, 0..5), 0..24)
        .prop_map(|rows| {
            let mut bank = StrategyBank::new();
            for row in &rows {
                bank.push_row(row);
            }
            bank
        })
}

/// Reference for [`StrategyBank::argmax_row_sums`]: the `argmax_row_by` +
/// [`strategy_weight`] pair it replaced — rows visited in order, NaN compares
/// `Equal`, the last maximal row wins.
fn argmax_rows_reference(bank: &StrategyBank, weights: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (x, row) in bank.iter().enumerate() {
        let w = strategy_weight(row, weights);
        best = match best {
            Some((bx, bw))
                if bw.partial_cmp(&w).unwrap_or(Ordering::Equal) == Ordering::Greater =>
            {
                Some((bx, bw))
            }
            _ => Some((x, w)),
        };
    }
    best.map(|(x, _)| x)
}

fn arb_graph(max_vertices: usize) -> impl Strategy<Value = RelationGraph> {
    (2usize..=max_vertices).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |pairs| {
            let edges: Vec<(usize, usize)> = pairs.into_iter().filter(|&(u, v)| u != v).collect();
            RelationGraph::from_edges(n, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MOSS/CSR chunked sweeps (integer and weighted counts) are bit-identical
    /// to the scalar per-arm reference over arbitrary estimator states.
    #[test]
    fn chunked_score_kernels_match_scalar_bitwise(
        est in arb_estimators(70),
        t in 1usize..10_000,
    ) {
        let k = est.len();
        let (means, counts) = (est.means(), est.counts());
        let (mut chunked, mut scalar) = (Vec::new(), Vec::new());

        kernels::moss_scores_into(means, counts, t, k, &mut chunked);
        kernels::moss_scores_scalar(means, counts, t, k, &mut scalar);
        prop_assert!(bits_eq(&chunked, &scalar), "moss diverged");

        kernels::csr_scores_into(means, counts, t, k, &mut chunked);
        kernels::csr_scores_scalar(means, counts, t, k, &mut scalar);
        prop_assert!(bits_eq(&chunked, &scalar), "csr diverged");

        let mut eff = Vec::new();
        est.effective_counts_into(&mut eff);
        kernels::moss_scores_weighted_into(means, &eff, t, k, &mut chunked);
        kernels::moss_scores_weighted_scalar(means, &eff, t, k, &mut scalar);
        prop_assert!(bits_eq(&chunked, &scalar), "weighted moss diverged");

        kernels::csr_scores_weighted_into(means, &eff, t, k, &mut chunked);
        kernels::csr_scores_weighted_scalar(means, &eff, t, k, &mut scalar);
        prop_assert!(bits_eq(&chunked, &scalar), "weighted csr diverged");
    }

    /// Fused score+argmax passes pick exactly the arm `argmax_last` picks on
    /// the scalar score vector (same last-max tie-breaking, including the
    /// all-∞ cold-start ties).
    #[test]
    fn fused_argmax_matches_scalar_argmax(
        est in arb_estimators(70),
        t in 1usize..10_000,
    ) {
        let k = est.len();
        let (means, counts) = (est.means(), est.counts());
        let mut scores = Vec::new();

        kernels::moss_scores_scalar(means, counts, t, k, &mut scores);
        prop_assert_eq!(
            kernels::moss_argmax(means, counts, t, k),
            argmax_last(scores.iter().copied())
        );

        let ucb1: Vec<f64> = means
            .iter()
            .zip(counts)
            .map(|(&m, &c)| kernels::ucb1_index(m, c, t))
            .collect();
        prop_assert_eq!(
            kernels::ucb1_argmax(means, counts, t),
            argmax_last(ucb1.iter().copied())
        );
    }

    /// The raw-slice kernels (UCB-Tuned, CUCB, LLR) reproduce their scalar
    /// index functions element for element and pick the same argmax.
    #[test]
    fn ucb_family_kernels_match_index_functions(
        arrays in arb_arrays(70),
        t in 1usize..10_000,
        max_size in 1usize..8,
    ) {
        let (means, counts, sum_sq) = arrays;
        let tuned: Vec<f64> = (0..means.len())
            .map(|i| kernels::ucb_tuned_index(means[i], counts[i], sum_sq[i], t))
            .collect();
        prop_assert_eq!(
            kernels::ucb_tuned_argmax(&means, &counts, &sum_sq, t),
            argmax_last(tuned.iter().copied())
        );

        let mut out = Vec::new();
        kernels::cucb_scores_into(&means, &counts, t, &mut out);
        let cucb: Vec<f64> = (0..means.len())
            .map(|i| kernels::cucb_index(means[i], counts[i], t))
            .collect();
        prop_assert!(bits_eq(&out, &cucb), "cucb diverged");

        kernels::llr_scores_into(&means, &counts, max_size, t, &mut out);
        let llr: Vec<f64> = (0..means.len())
            .map(|i| kernels::llr_index(means[i], counts[i], max_size, t))
            .collect();
        prop_assert!(bits_eq(&out, &llr), "llr diverged");
    }

    /// The fused DFL-SSR kernel reproduces the nested closed-neighbourhood
    /// scan (`min` count, mean sum, normalised MOSS index) bit for bit on
    /// arbitrary graphs and estimator states.
    #[test]
    fn ssr_kernel_matches_neighborhood_reference(
        graph in arb_graph(24),
        seed in 0u64..1_000,
        rounds in 0usize..120,
        t in 1usize..10_000,
    ) {
        use rand::Rng;
        let k = graph.num_vertices();
        let mut est = ArmEstimators::new(k);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..rounds {
            let arm = rng.gen_range(0..k);
            est.update(arm, rng.gen_range(0.0..1.0));
        }
        let csr = CsrGraph::from_graph(&graph);

        let reference: Vec<f64> = (0..k)
            .map(|arm| {
                let nbhd = graph.closed_neighborhood(arm);
                let count = nbhd.iter().map(|&j| est.count(j)).min().unwrap_or(0);
                let sum: f64 = nbhd.iter().map(|&j| est.mean(j)).sum();
                netband_core::estimator::moss_index(sum / k.max(1) as f64, count, t, k.max(1))
            })
            .collect();

        let mut scores = Vec::new();
        kernels::ssr_scores_into(&csr, est.counts(), est.means(), t, &mut scores);
        prop_assert!(bits_eq(&scores, &reference), "ssr scores diverged");
        prop_assert_eq!(
            kernels::ssr_argmax(&csr, est.counts(), est.means(), t),
            argmax_last(reference.iter().copied())
        );
    }

    /// `StrategyBank::argmax_row_sums` (the precomputed-score-table oracle
    /// scan) agrees with the `argmax_row_by` + `strategy_weight` reference on
    /// arbitrary banks and weight tables — including NaN/±∞ weights and
    /// out-of-range arm ids.
    #[test]
    fn bank_row_sum_argmax_matches_reference(
        bank in arb_bank(16),
        weights in proptest::collection::vec(arb_weight(), 16..=16),
    ) {
        prop_assert_eq!(
            bank.argmax_row_sums(&weights),
            argmax_rows_reference(&bank, &weights)
        );
    }

    /// The mark-table neighbourhood-union oracle behind
    /// `argmax_by_neighborhood_weights` selects exactly the strategy the
    /// public [`neighborhood_weight`] reference selects on arbitrary graphs,
    /// banks, and weight tables.
    #[test]
    fn neighborhood_oracle_matches_reference(
        graph in arb_graph(14),
        rows in proptest::collection::vec(
            proptest::collection::vec(0usize..14, 1..4), 1..16),
        weights in proptest::collection::vec(arb_weight(), 14..=14),
    ) {
        let n = graph.num_vertices();
        let mut bank = StrategyBank::new();
        for row in &rows {
            let mut row: Vec<usize> = row.iter().map(|&a| a % n).collect();
            row.sort_unstable();
            row.dedup();
            bank.push_row(&row);
        }
        let family = StrategyFamily::explicit(bank.clone());
        let chosen = family.argmax_by_neighborhood_weights(&weights[..n], &graph);

        let mut best: Option<(usize, f64)> = None;
        for (x, row) in bank.iter().enumerate() {
            let w = neighborhood_weight(row, &weights[..n], &graph);
            best = match best {
                Some((bx, bw))
                    if bw.partial_cmp(&w).unwrap_or(Ordering::Equal) == Ordering::Greater =>
                {
                    Some((bx, bw))
                }
                _ => Some((x, w)),
            };
        }
        let expected = best.map(|(x, _)| bank.row(x).to_vec());
        prop_assert_eq!(chosen, expected);
    }
}
