//! Observability determinism suite.
//!
//! Observability must be a **pure read-out**: replaying the same golden
//! workload twice has to produce identical tenant counters, identical
//! telemetry (rewards bit for bit), and an identical trace — same event
//! kinds, same tenants, same order, same sequence numbers. Latency
//! histograms are the one non-deterministic surface (they measure wall
//! clock) and are deliberately excluded; every *count* is compared exactly.
//!
//! Also pinned here: the `MetricsReport::tenants` / `telemetry_all()`
//! "sorted by tenant id" documentation claim, the lifecycle trace-kind
//! order, and observability across a snapshot/restore boundary.

mod common;

use common::{drift_scenario, golden_specs, SINGLE_HORIZON};
use netband::prelude::*;
use netband::serve::TraceEvent;

/// Closed loop over the engine API: every decide's revealed feedback is
/// routed straight back in.
fn serve_closed_loop(engine: &ServeEngine, tenant: &str, horizon: usize) {
    for _ in 0..horizon {
        let reply = engine.decide(tenant).expect("decide");
        let event = reply.feedback.expect("golden tenants echo their feedback");
        engine
            .feedback(tenant, reply.round, event)
            .expect("feedback");
    }
}

/// Everything observable about a run that must be replay-deterministic.
/// Latency histograms and stage timings are excluded on purpose: they
/// record wall-clock durations.
#[derive(Debug, PartialEq)]
struct ObservedRun {
    tenants: Vec<(String, netband::serve::TenantMetrics)>,
    overload_rejections: u64,
    shard_commands: Vec<u64>,
    shard_rejected: Vec<u64>,
    telemetry: Vec<TenantTelemetry>,
    reward_bits: Vec<(u64, u64)>,
    trace: Vec<Vec<TraceEvent>>,
    engine_trace: Vec<TraceEvent>,
}

/// One full observed golden run on a single-shard engine (single shard so
/// the trace interleaving is a total order).
fn observed_golden_run() -> ObservedRun {
    let engine = ServeEngine::start(
        EngineConfig::new(1)
            .with_queue_capacity(64)
            .with_trace_capacity(2048),
    );
    let specs = golden_specs();
    for (name, spec) in &specs {
        engine
            .register_tenant_spec(&RegisterTenantSpec::new(*name, spec.clone()))
            .expect("register tenant");
    }
    for (name, spec) in &specs {
        serve_closed_loop(&engine, name, spec.horizon);
    }
    let report = engine.metrics().expect("metrics");
    let telemetry = engine.telemetry_all().expect("telemetry");
    let reward_bits = telemetry
        .iter()
        .map(|t| (t.total_reward.to_bits(), t.optimal_reward.to_bits()))
        .collect();
    let trace = engine.trace().expect("trace");
    let run = ObservedRun {
        tenants: report.tenants.clone(),
        overload_rejections: report.overload_rejections,
        shard_commands: report.shards.iter().map(|s| s.commands).collect(),
        shard_rejected: report.shards.iter().map(|s| s.rejected).collect(),
        telemetry,
        reward_bits,
        trace: trace.shards.clone(),
        engine_trace: trace.engine.clone(),
    };
    engine.shutdown();
    run
}

/// The flagship determinism check: two independent replays of the same
/// golden workload must be observationally identical — counters, telemetry
/// (bit-exact rewards), and the full trace event stream.
#[test]
fn two_identical_runs_produce_identical_observability() {
    let first = observed_golden_run();
    let second = observed_golden_run();
    assert_eq!(first, second);

    // Sanity on the content itself, not just replay agreement.
    let total: u64 = first.tenants.iter().map(|(_, m)| m.decides).sum();
    let expected: u64 = golden_specs().iter().map(|(_, s)| s.horizon as u64).sum();
    assert_eq!(total, expected, "closed loop served every round");
    assert_eq!(first.overload_rejections, 0);
    assert!(first.engine_trace.is_empty(), "no overload events expected");
    let events = &first.trace[0];
    assert!(!events.is_empty(), "trace ring captured lifecycle events");
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "trace seqs strictly increase");
    }
}

/// Observability must survive a snapshot/restore boundary: restoring a
/// tenant into a fresh engine and finishing the run is itself replayable
/// (two split replicas agree exactly), and the restored tenant's *learning
/// state* — round, rewards, per-arm estimators — lands bit-identical to an
/// uninterrupted run.
#[test]
fn observability_survives_snapshot_restore() {
    let (name, spec) = golden_specs().remove(0);
    let half = SINGLE_HORIZON / 2;

    let split_run = || {
        let before = ServeEngine::start(EngineConfig::new(1).with_trace_capacity(1024));
        before
            .register_tenant_spec(&RegisterTenantSpec::new(name, spec.clone()))
            .expect("register tenant");
        serve_closed_loop(&before, name, half);
        let snapshot = before.evict_tenant(name).expect("evict tenant");
        before.shutdown();

        let after = ServeEngine::start(EngineConfig::new(1).with_trace_capacity(1024));
        after.restore_tenant(snapshot).expect("restore tenant");
        serve_closed_loop(&after, name, SINGLE_HORIZON - half);
        let telemetry = after.telemetry(name).expect("telemetry");
        let report = after.metrics().expect("metrics");
        let trace = after.trace().expect("trace");
        after.shutdown();
        (telemetry, report.tenants, trace.shards)
    };

    let (telemetry_a, tenants_a, trace_a) = split_run();
    let (telemetry_b, tenants_b, trace_b) = split_run();
    assert_eq!(telemetry_a, telemetry_b, "split replicas agree");
    assert_eq!(tenants_a, tenants_b);
    assert_eq!(trace_a, trace_b);

    // The second engine's trace starts with the restore event.
    let first_event = trace_a[0].first().expect("trace has events");
    assert_eq!(first_event.kind.name(), "tenant_restored");
    assert_eq!(first_event.tenant.as_str(), name);

    // Learning state matches an uninterrupted run bit for bit.
    let full = ServeEngine::start(EngineConfig::new(1).with_trace_capacity(1024));
    full.register_tenant_spec(&RegisterTenantSpec::new(name, spec.clone()))
        .expect("register tenant");
    serve_closed_loop(&full, name, SINGLE_HORIZON);
    let full_telemetry = full.telemetry(name).expect("telemetry");
    full.shutdown();

    assert_eq!(telemetry_a.round, full_telemetry.round);
    assert_eq!(
        telemetry_a.total_reward.to_bits(),
        full_telemetry.total_reward.to_bits(),
        "restored reward accumulation is bit-exact"
    );
    assert_eq!(
        telemetry_a.optimal_reward.to_bits(),
        full_telemetry.optimal_reward.to_bits()
    );
    assert_eq!(telemetry_a.arm_pulls, full_telemetry.arm_pulls);
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&telemetry_a.arm_means),
        bits(&full_telemetry.arm_means)
    );

    // Serving counters travel inside the snapshot, so the restored tenant
    // reports the whole run's decides — not just the second half.
    assert_eq!(telemetry_a.metrics.decides, SINGLE_HORIZON as u64);
    assert_eq!(full_telemetry.metrics.decides, SINGLE_HORIZON as u64);
}

/// `MetricsReport::tenants` and `telemetry_all()` both document "sorted by
/// tenant id" — pinned here on a multi-shard engine whose tenants span every
/// shard, where the sort actually has to do work (per-shard gathers arrive
/// in shard order, not id order).
#[test]
fn report_tenants_sorted_by_id_across_shards() {
    let engine = ServeEngine::start(EngineConfig::new(4).with_queue_capacity(64));
    let spec = drift_scenario();
    // Registered deliberately out of id order; the ids span all 4 shards
    // under the pinned FNV-1a router.
    let ids = [
        "tenant-7", "tenant-2", "tenant-5", "tenant-0", "tenant-6", "tenant-3", "tenant-1",
        "tenant-4",
    ];
    let shards: std::collections::HashSet<usize> =
        ids.iter().map(|id| engine.shard_of(id)).collect();
    assert_eq!(shards.len(), 4, "fixture ids must span every shard");
    for id in ids {
        engine
            .register_tenant_spec(&RegisterTenantSpec::new(id, spec.clone()))
            .expect("register tenant");
        serve_closed_loop(&engine, id, 3);
    }

    let report = engine.metrics().expect("metrics");
    assert_eq!(report.tenants.len(), ids.len());
    let names: Vec<&str> = report.tenants.iter().map(|(id, _)| id.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "MetricsReport.tenants sorted by tenant id");

    let telemetry = engine.telemetry_all().expect("telemetry");
    let ids_seen: Vec<&str> = telemetry.iter().map(|t| t.id.as_str()).collect();
    assert_eq!(ids_seen, names, "telemetry_all sorted identically");
    engine.shutdown();
}

/// The trace ring records tenant lifecycle events in cause order with
/// strictly increasing sequence numbers.
#[test]
fn trace_records_lifecycle_events_in_order() {
    let (name, spec) = golden_specs().remove(0);
    let engine = ServeEngine::start(EngineConfig::new(1).with_trace_capacity(256));
    engine
        .register_tenant_spec(&RegisterTenantSpec::new(name, spec))
        .expect("register tenant");
    serve_closed_loop(&engine, name, 2);
    engine.snapshot_tenant(name).expect("snapshot");
    engine.evict_tenant(name).expect("evict");

    let trace = engine.trace().expect("trace");
    let kinds: Vec<&str> = trace.shards[0].iter().map(|e| e.kind.name()).collect();
    assert_eq!(
        kinds,
        vec![
            "tenant_registered",
            "flush_applied",
            "flush_applied",
            "snapshot_taken",
            "tenant_evicted",
        ],
    );
    for event in &trace.shards[0] {
        assert_eq!(event.tenant.as_str(), name);
    }
    let seqs: Vec<u64> = trace.shards[0].iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3, 4]);

    // Draining the ring is destructive: a second read starts empty.
    let again = engine.trace().expect("trace");
    assert!(again.shards[0].is_empty());
    engine.shutdown();
}
