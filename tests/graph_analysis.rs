//! Integration tests of the graph-analysis machinery that supports the
//! Theorem 1 / Theorem 2 constants: clique covers versus colourings versus the
//! exact optimum, and the structural metrics used to characterise experiment
//! instances.

use netband::graph::coloring::{
    dsatur_clique_cover, dsatur_coloring, exact_minimum_clique_cover_size, is_proper_coloring,
    num_colors,
};
use netband::graph::metrics::{clustering_coefficient, degree_histogram, metrics};
use netband::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cover_hierarchy_exact_le_dsatur_and_greedy() {
    let mut rng = StdRng::seed_from_u64(1);
    for &p in &[0.2, 0.5, 0.8] {
        let g = generators::erdos_renyi(12, p, &mut rng);
        let exact = exact_minimum_clique_cover_size(&g);
        let dsatur = dsatur_clique_cover(&g);
        let greedy = greedy_clique_cover(&g);
        assert!(dsatur.is_valid_for(&g));
        assert!(greedy.is_valid_for(&g));
        assert!(exact <= dsatur.len(), "p={p}");
        assert!(exact <= greedy.len(), "p={p}");
        // The Theorem 1 bound evaluated with a smaller cover is tighter.
        let n = 10_000;
        assert!(
            bounds::theorem1_dfl_sso(n, 12, exact) <= bounds::theorem1_dfl_sso(n, 12, greedy.len())
        );
    }
}

#[test]
fn metrics_summarise_the_paper_workload_sensibly() {
    let mut rng = StdRng::seed_from_u64(2);
    let g = generators::erdos_renyi(100, 0.3, &mut rng);
    let m = metrics(&g);
    assert_eq!(m.num_vertices, 100);
    assert!((m.density - 0.3).abs() < 0.05);
    // ER(100, 0.3) is connected with overwhelming probability.
    assert_eq!(m.num_components, 1);
    assert!(m.diameter <= 4);
    // Transitivity of an ER graph is close to p.
    assert!((m.clustering_coefficient - 0.3).abs() < 0.08);
    assert_eq!(degree_histogram(&g).iter().sum::<usize>(), 100);
}

#[test]
fn side_observation_strength_correlates_with_metrics() {
    // Denser graphs: larger mean degree, smaller cover, lower DFL-SSO regret.
    let mut rng = StdRng::seed_from_u64(3);
    let sparse = generators::erdos_renyi(40, 0.1, &mut rng);
    let dense = generators::erdos_renyi(40, 0.7, &mut rng);
    assert!(metrics(&dense).mean_degree > metrics(&sparse).mean_degree);
    assert!(greedy_clique_cover(&dense).len() < greedy_clique_cover(&sparse).len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dsatur_colourings_are_proper_on_random_graphs(seed in 0u64..10_000, p in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(14, p, &mut rng);
        let colors = dsatur_coloring(&g);
        prop_assert!(is_proper_coloring(&g, &colors));
        prop_assert!(num_colors(&colors) <= g.max_degree() + 1);
    }

    #[test]
    fn clustering_coefficient_is_in_unit_interval(seed in 0u64..10_000, p in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(12, p, &mut rng);
        let c = clustering_coefficient(&g);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
    }

    #[test]
    fn metrics_agree_with_direct_graph_queries(seed in 0u64..10_000, p in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(10, p, &mut rng);
        let m = metrics(&g);
        prop_assert_eq!(m.num_edges, g.num_edges());
        prop_assert_eq!(m.max_degree, g.max_degree());
        prop_assert_eq!(m.num_components, g.connected_components().len());
        prop_assert!(m.degeneracy <= m.max_degree);
    }
}
