//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no network access, so this shim re-implements the
//! slice of the criterion API the `netband-bench` suite uses —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros — as a plain
//! wall-clock timing loop:
//!
//! * `cargo bench --no-run` (the CI bench-smoke gate) compiles every bench
//!   exactly as it would against the real crate;
//! * `cargo bench` executes each benchmark with a short warm-up followed by a
//!   fixed number of timed samples and prints a `name  time: [median]` line.
//!
//! There is no statistical analysis, outlier rejection, or HTML report — swap
//! in the real crate for that; the bench sources need no changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
///
/// Forwards to [`std::hint::black_box`], like recent criterion versions.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark: a function name plus a parameter
/// rendering, displayed as `name/param`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Timing-loop driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            elapsed: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Runs `routine` in a warm-up pass followed by timed samples, recording
    /// the total elapsed time. The return value is passed through
    /// [`black_box`] so the computation is not optimised away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a small untimed fraction of the sample budget.
        for _ in 0..(self.samples / 10).max(1) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.samples;
    }

    fn report(&self, label: &str) {
        if self.iterations == 0 {
            println!("{label:<50} (no iterations recorded)");
        } else {
            let per_iter = self.elapsed.as_secs_f64() / self.iterations as f64;
            println!("{label:<50} time: [{}]", humanize(per_iter));
        }
    }
}

fn humanize(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Entry point collecting the benchmarks of one binary.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: u64, mut f: F) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    b.report(label);
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Registers and immediately runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Registers and immediately runs a parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group. (No-op in the shim; kept for API compatibility.)
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named group callable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Expands to the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; a plain timing loop
            // has no options, so arguments are accepted and ignored.
            let _args: Vec<String> = std::env::args().collect();
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut hits = 0u64;
        c.bench_function("smoke", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn groups_run_parameterised_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| total += x)
        });
        group.finish();
        assert!(total > 0);
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(
            BenchmarkId::new("er", "n100_p0.3").to_string(),
            "er/n100_p0.3"
        );
    }
}
