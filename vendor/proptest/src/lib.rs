//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build container has no network access, so this shim implements the
//! subset of the proptest API that `tests/property_tests.rs` uses:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//!   implemented for integer and float ranges and for tuples of strategies,
//! * [`collection::vec`] with `Range` / `RangeInclusive` size specifications,
//! * [`strategy::Just`], [`bool::ANY`], and the [`prop_oneof!`] weighted
//!   union macro,
//! * [`prelude::ProptestConfig`] (`with_cases`),
//! * the [`proptest!`] macro and the [`prop_assert!`] family.
//!
//! Inputs are generated deterministically (the case index seeds the vendored
//! [`rand::rngs::StdRng`]), so failures are reproducible. The big feature the
//! real crate adds on top is *shrinking* — minimising a failing input — which
//! this shim does not attempt: a failing case panics with the case number and
//! the generated inputs are reconstructible from the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner plumbing: the deterministic RNG and per-run configuration.
pub mod test_runner {
    /// Deterministic generator used to produce each test case.
    pub type TestRng = rand::rngs::StdRng;

    /// Creates the RNG for one test case of one property.
    ///
    /// Mixes the property name into the stream so different properties with
    /// the same case index see different inputs.
    pub fn case_rng(property: &str, case: u64) -> TestRng {
        use rand::SeedableRng;
        // FNV-1a over the property name, folded with the case index.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in property.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Input-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds every generated value into `f` to pick a dependent strategy,
        /// then draws from that strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Strategy that always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of same-valued strategies; built by [`prop_oneof!`].
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct OneOf<V> {
        #[allow(clippy::type_complexity)]
        arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>,
    }

    impl<V> OneOf<V> {
        /// An empty union; populate it with [`OneOf::with`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            OneOf { arms: Vec::new() }
        }

        /// Adds an arm drawn with probability `weight / total_weight`.
        pub fn with<S>(mut self, weight: u32, strat: S) -> Self
        where
            S: Strategy<Value = V> + 'static,
        {
            self.arms
                .push((weight, Box::new(move |rng| strat.generate(rng))));
            self
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            let mut pick = rng.gen_range(0..total);
            for (weight, arm) in &self.arms {
                if pick < *weight {
                    return arm(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding uniformly random booleans (see [`ANY`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (`weight => strategy`) or uniform (`strategy, ...`) union of
/// strategies producing the same value type, mirroring proptest's macro of
/// the same name.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new()$(.with($weight as u32, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new()$(.with(1u32, $strat))+
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block becomes
/// a `#[test]` that draws `cases` deterministic inputs and runs the body on
/// each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    let mut proptest_case_rng =
                        $crate::test_runner::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_case_rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in collection::vec(0usize..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_threads_dependent_values(
            pair in (2usize..6).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i)))
        ) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = 0.0f64..1.0;
        let a = strat.generate(&mut crate::test_runner::case_rng("p", 0));
        let b = strat.generate(&mut crate::test_runner::case_rng("p", 0));
        assert_eq!(a, b);
        let c = strat.generate(&mut crate::test_runner::case_rng("p", 1));
        assert_ne!(a, c);
    }
}
