//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no network access and no pre-populated cargo
//! registry, so the workspace vendors the *subset* of the `rand 0.8` API that
//! the `netband` crates actually use:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool` and `fill_u64`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded through SplitMix64,
//! * [`seq::SliceRandom::shuffle`] — an in-place Fisher–Yates shuffle.
//!
//! The generator is deterministic for a given seed, which is all the
//! simulations and tests rely on; it is **not** the same stream as the real
//! `rand::rngs::StdRng` (ChaCha12), so absolute sampled values differ from a
//! build against crates.io. Replace this crate with the real dependency by
//! deleting `vendor/rand` and pointing `[workspace.dependencies] rand` at the
//! registry once one is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits from the generator.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state with SplitMix64 (the scheme `rand` itself documents for
    /// `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`], mirroring
/// `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free unbiased-enough integer sampling via 128-bit widening
/// multiply (Lemire's method without the rejection step; the bias is < 2^-64
/// per draw, far below anything the simulations can detect).
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_u64_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + sample_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + (end - start) * f64::sample_standard(rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly (for `f64`: uniform on `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    ///
    /// Not the ChaCha12 stream of the real `rand::rngs::StdRng`, but a
    /// high-quality, reproducible generator with the same construction API.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's raw xoshiro256++ state, for durable persistence.
        /// [`StdRng::from_state`] of the returned words continues the stream
        /// bit-exactly.
        pub fn to_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::to_state`].
        ///
        /// An all-zero state is a fixed point of xoshiro256++ (the generator
        /// would emit zeros forever); it cannot come from `to_state` of a
        /// seeded generator, so it is rejected by seeding from 0 instead.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension trait adding random-order operations to slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if the slice is empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::sample_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::sample_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_is_close_to_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.gen::<u64>();
        }
        let mut resumed = StdRng::from_state(rng.to_state());
        for _ in 0..100 {
            assert_eq!(rng.gen::<u64>(), resumed.gen::<u64>());
        }
        // The all-zero fixed point is replaced by a usable generator.
        let mut zero = StdRng::from_state([0; 4]);
        assert_ne!(zero.gen::<u64>(), zero.gen::<u64>());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
