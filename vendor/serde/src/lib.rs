//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build container has no network access, so this shim provides exactly
//! what the `netband` workspace consumes from `serde`: the `Serialize` /
//! `Deserialize` *derive attributes* on result and config structs. Nothing in
//! the workspace currently calls a serializer (`serde_json` is not used), so
//! the traits are markers with blanket impls and the derives expand to
//! nothing.
//!
//! Replacing this shim with the real crate is a manifest-only change: the
//! derive sites (`#[derive(Serialize, Deserialize)]`) are already written
//! against the real API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serializable under the real `serde`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that would be deserializable under the real `serde`.
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}
