//! No-op derive macros for the vendored `serde` shim.
//!
//! The workspace's `serde` stand-in (`vendor/serde`) implements its
//! [`Serialize`]/[`Deserialize`] marker traits for every type via blanket
//! impls, so the derives here only need to *accept* the `#[derive(Serialize,
//! Deserialize)]` attributes that annotate the result/config structs across
//! the workspace — they expand to nothing. When the real `serde` replaces the
//! shim, these derive sites become real serialization impls with no source
//! change.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and inert `#[serde(...)]` field/container
/// attributes, like the real derive) and expands to nothing; the shim's
/// blanket impl already covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and inert `#[serde(...)]` field/container
/// attributes, like the real derive) and expands to nothing; the shim's
/// blanket impl already covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
