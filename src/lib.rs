//! # netband — networked stochastic multi-armed bandits with combinatorial strategies
//!
//! A from-scratch Rust reproduction of *Networked Stochastic Multi-Armed Bandits
//! with Combinatorial Strategies* (Shaojie Tang & Yaqin Zhou, ICDCS 2017,
//! arXiv:1503.06169).
//!
//! The paper studies a decision maker facing `K` arms whose correlation is
//! captured by an undirected **relation graph**: pulling an arm also yields a
//! *side bonus* (an observation, or an actual reward) for the arm's neighbours.
//! Crossing the play mode (single arm / combinatorial strategy) with the bonus
//! type (observation / reward) gives four scenarios, each solved by a
//! distribution-free zero-regret policy: **DFL-SSO**, **DFL-CSO**, **DFL-SSR**
//! and **DFL-CSR**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — relation graphs, generators, clique covers, strategy relation
//!   graphs (`netband-graph`).
//! * [`mod@env`] — reward distributions, arm sets, the networked environment and
//!   the combinatorial oracles (`netband-env`).
//! * [`core`] — the four DFL policies, the policy traits, and the Theorem 1–4
//!   bounds (`netband-core`).
//! * [`baselines`] — MOSS, UCB1, UCB-Tuned, ε-greedy, Thompson sampling, EXP3,
//!   CUCB, LLR and friends (`netband-baselines`).
//! * [`sim`] — the simulation engine: runners, regret traces, replication,
//!   statistics and export (`netband-sim`).
//! * [`spec`] — the declarative ScenarioSpec API: typed, versioned, JSON-
//!   serializable scenario documents with build factories (`netband-spec`).
//! * [`serve`] — the sharded multi-tenant serving engine with batched
//!   delayed-feedback ingestion (`netband-serve`).
//! * [`net`] — the framed TCP wire protocol over the serving engine: server,
//!   client, and load-generator binaries (`netband-net`).
//! * [`obs`] — observability: the metrics registry with Prometheus-style text
//!   exposition, latency histograms, per-stage decide timings, and the
//!   structured trace ring (`netband-obs`).
//! * [`experiments`] — the harness that regenerates every figure of the paper's
//!   evaluation section (`netband-experiments`).
//!
//! # Quickstart
//!
//! ```
//! use netband::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // 1. A relation graph over 20 arms (an online social network, say) and
//! //    Bernoulli arms with unknown means.
//! let mut rng = StdRng::seed_from_u64(7);
//! let graph = netband::graph::generators::erdos_renyi(20, 0.3, &mut rng);
//! let arms = ArmSet::random_bernoulli(20, &mut rng);
//! let bandit = NetworkedBandit::new(graph.clone(), arms)?;
//!
//! // 2. The paper's Algorithm 1: single play with side observation.
//! let mut policy = DflSso::new(graph);
//!
//! // 3. Run it and measure regret with the simulation engine.
//! let result = run_single(&bandit, &mut policy, SingleScenario::SideObservation, 2_000, 42);
//! assert!(result.average_regret() < 0.5);
//! # Ok::<(), netband::env::EnvError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use netband_baselines as baselines;
pub use netband_core as core;
pub use netband_env as env;
pub use netband_experiments as experiments;
pub use netband_graph as graph;
pub use netband_net as net;
pub use netband_obs as obs;
pub use netband_serve as serve;
pub use netband_sim as sim;
pub use netband_spec as spec;

/// One-stop import for examples and downstream applications.
pub mod prelude {
    pub use netband_baselines::{
        Cucb, EpsilonGreedy, Exp3, KlUcb, Llr, Moss, Softmax, ThompsonBernoulli, Ucb1,
    };
    pub use netband_core::prelude::*;
    pub use netband_env::workloads::Workload;
    pub use netband_env::{
        ArmSet, CombinatorialFeedback, FeasibleSet, NetworkedBandit, PullBuffer,
        SinglePlayFeedback, StrategyFamily,
    };
    pub use netband_graph::{
        generators, greedy_clique_cover, metrics, CsrGraph, GraphMetrics, RelationGraph,
        StrategyBank, StrategyRelationGraph,
    };
    pub use netband_net::{NetClient, NetError, NetServer, NetStats, ObsServer, ServerConfig};
    pub use netband_obs::{parse_exposition, LatencyHistogram, Registry, TraceRing};
    pub use netband_serve::{
        DecideReply, Decision, EngineConfig, FeedbackEvent, FlushPolicy, MetricsReport,
        RegisterTenantSpec, ServeClient, ServeEngine, ServeError, StoreConfig, StoreMetrics,
        TenantSnapshot, TenantSpec, TenantTelemetry, TraceReport,
    };
    pub use netband_sim::{
        replicate, replicate_spec, run_built, run_combinatorial, run_single, run_single_coupled,
        run_spec, AveragedRun, CombinatorialScenario, ReplicationConfig, RunResult, SingleScenario,
    };
    pub use netband_spec::{
        AnyPolicy, ArmsSpec, ChangePointSpec, ChurnWindowSpec, DriftSpec, EstimatorSpec,
        FamilySpec, FeedbackSpec, FleetSpec, FleetTenant, GradualDriftSpec, GraphSpec, PolicySpec,
        ScenarioSpec, SideBonus, SpecError, WireDecision, WireErrorCode, WireEvent, WireFeedback,
        WireLatency, WireMetrics, WireReply, WireRequest, WireResponse, WorkloadSpec, SPEC_VERSION,
    };
}
